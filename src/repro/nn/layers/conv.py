"""2-D convolution layer (NCHW layout).

Two interchangeable implementations share the layer:

``"loop"`` (the default)
    Vectorised over batch and spatial dimensions; the only Python loop is
    over the ``kh * kw`` kernel positions (25 iterations for the paper's
    5x5 kernels), each a single ``einsum`` on a strided view of the padded
    input.

``"im2col"``
    Lowers the convolution to one matrix contraction: the padded input is
    unfolded into a ``(batch, C*kh*kw, out_h*out_w)`` column tensor whose
    K axis follows the weight's own ``(C, kh, kw)`` ravel order, so the
    forward is a single ``einsum("nkl,ok->nol")`` and both weight and
    input gradients are single contractions too (plus a ``col2im``
    scatter-add).  The column tensor is also what lets the fleet compute
    kernel extract *per-worker* weight gradients from one stacked backward
    pass.

The two produce the same convolution up to floating-point summation order
(they accumulate the ``C*kh*kw`` reduction in different orders), so results
agree to high relative tolerance but are not bit-identical — which is why
``"loop"`` stays the default and only the statistically-equivalent fleet
compute path flips layers to ``"im2col"``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.initializers import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.utils.random import SeedLike, as_rng
from repro.utils.validation import check_positive_int


def _pair(value, name: str) -> Tuple[int, int]:
    """Normalise an int or 2-tuple into a (height, width) pair of positive ints."""
    if isinstance(value, (int, np.integer)):
        value = (int(value), int(value))
    if len(value) != 2:
        raise ConfigurationError(f"{name} must be an int or a pair, got {value!r}")
    return (check_positive_int(int(value[0]), name), check_positive_int(int(value[1]), name))


def same_padding(in_size: int, kernel: int, stride: int) -> Tuple[int, int, int]:
    """TensorFlow-style SAME padding: output size and (before, after) pad amounts."""
    out_size = -(-in_size // stride)  # ceil division
    total_pad = max((out_size - 1) * stride + kernel - in_size, 0)
    before = total_pad // 2
    after = total_pad - before
    return out_size, before, after


def valid_output(in_size: int, kernel: int, stride: int) -> int:
    """Output size of a VALID (no padding) convolution/pooling."""
    if in_size < kernel:
        raise ConfigurationError(
            f"input size {in_size} smaller than kernel {kernel} with VALID padding"
        )
    return (in_size - kernel) // stride + 1


def im2col(
    padded: np.ndarray, kh: int, kw: int, sh: int, sw: int, out_h: int, out_w: int
) -> np.ndarray:
    """Unfold a padded NCHW tensor into ``(N, C*kh*kw, out_h*out_w)`` columns.

    The K axis is ordered ``(C, kh, kw)`` — the same ravel order as a
    ``(O, C, kh, kw)`` convolution weight — so ``weight.reshape(O, -1)``
    contracts against it directly.  Built from a zero-copy strided view,
    then materialised once (the contraction wants contiguous memory).
    """
    n, c = padded.shape[:2]
    s0, s1, s2, s3 = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    return np.ascontiguousarray(view).reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    padded_shape: Tuple[int, ...],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add ``(N, C*kh*kw, out_h*out_w)`` columns back to padded NCHW.

    The adjoint of :func:`im2col`: overlapping kernel windows must *sum*
    into the image, so the scatter loops over the ``kh*kw`` positions and
    adds each slice into a strided view of the output.
    """
    n, c = padded_shape[:2]
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    grad_padded = np.zeros(padded_shape, dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw] += cols[
                :, :, i, j
            ]
    return grad_padded


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Kernel height/width (int or pair).
    stride:
        Convolution stride (int or pair).
    padding:
        ``"same"`` (TensorFlow SAME semantics, used by the Table-1 CNN) or
        ``"valid"``.
    impl:
        ``"loop"`` (default) or ``"im2col"`` — see the module docstring.
        Mutable at any time; each backward consumes the cache its own
        forward produced, so flipping between forwards is safe.
    """

    IMPLS = ("loop", "im2col")

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        *,
        stride=1,
        padding: str = "same",
        use_bias: bool = True,
        weight_init: str = "he",
        impl: str = "loop",
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_channels = check_positive_int(in_channels, "in_channels")
        self.out_channels = check_positive_int(out_channels, "out_channels")
        self.kernel_size = _pair(kernel_size, "kernel_size")
        self.stride = _pair(stride, "stride")
        padding = str(padding).lower()
        if padding not in ("same", "valid"):
            raise ConfigurationError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.padding = padding
        impl = str(impl).lower()
        if impl not in self.IMPLS:
            raise ConfigurationError(f"impl must be one of {self.IMPLS}, got {impl!r}")
        self.impl = impl

        init = get_initializer(weight_init)
        generator = as_rng(rng)
        kh, kw = self.kernel_size
        self.weight = self.add_parameter(
            init((self.out_channels, self.in_channels, kh, kw), generator), "weight"
        )
        self.use_bias = bool(use_bias)
        self.bias = (
            self.add_parameter(zeros((self.out_channels,)), "bias") if self.use_bias else None
        )
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ geometry
    def _geometry(self, h: int, w: int) -> Tuple[int, int, Tuple[int, int], Tuple[int, int]]:
        kh, kw = self.kernel_size
        sh, sw = self.stride
        if self.padding == "same":
            out_h, ph0, ph1 = same_padding(h, kh, sh)
            out_w, pw0, pw1 = same_padding(w, kw, sw)
        else:
            out_h, ph0, ph1 = valid_output(h, kh, sh), 0, 0
            out_w, pw0, pw1 = valid_output(w, kw, sw), 0, 0
        return out_h, out_w, (ph0, ph1), (pw0, pw1)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Output ``(channels, height, width)`` for an input ``(channels, height, width)``."""
        c, h, w = input_shape
        if c != self.in_channels:
            raise ConfigurationError(f"expected {self.in_channels} input channels, got {c}")
        out_h, out_w, _, _ = self._geometry(h, w)
        return (self.out_channels, out_h, out_w)

    # ------------------------------------------------------------------ forward
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ConfigurationError(
                f"Conv2D expected input of shape (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        kh, kw = self.kernel_size
        sh, sw = self.stride
        out_h, out_w, (ph0, ph1), (pw0, pw1) = self._geometry(h, w)
        self.last_forward_flops = (
            2.0 * n * self.out_channels * self.in_channels * kh * kw * out_h * out_w
        )
        padded = np.pad(x, ((0, 0), (0, 0), (ph0, ph1), (pw0, pw1)))
        if self.impl == "im2col":
            cols = im2col(padded, kh, kw, sh, sw, out_h, out_w)
            out = np.einsum(
                "nkl,ok->nol", cols, self.weight.data.reshape(self.out_channels, -1),
                optimize=True,
            ).reshape(n, self.out_channels, out_h, out_w)
            if self.bias is not None:
                out += self.bias.data[None, :, None, None]
            if training:
                self._cache = ("im2col", cols, x.shape, padded.shape, out_h, out_w)
            return out
        out = np.zeros((n, self.out_channels, out_h, out_w), dtype=np.float64)
        for i in range(kh):
            for j in range(kw):
                patch = padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw]
                out += np.einsum("ncyx,oc->noyx", patch, self.weight.data[:, :, i, j],
                                 optimize=True)
        if self.bias is not None:
            out += self.bias.data[None, :, None, None]
        if training:
            self._cache = ("loop", padded, x.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        # Dispatch on which forward produced the cache, not on self.impl —
        # the fleet kernel flips impl between forwards and each backward
        # must consume the matching cache.
        if self._cache[0] == "im2col":
            return self._backward_im2col(grad_output)
        _, padded, input_shape, out_h, out_w = self._cache
        kh, kw = self.kernel_size
        sh, sw = self.stride
        grad_padded = np.zeros_like(padded)
        for i in range(kh):
            for j in range(kw):
                patch = padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw]
                self.weight.grad[:, :, i, j] += np.einsum(
                    "ncyx,noyx->oc", patch, grad_output, optimize=True
                )
                grad_padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw] += np.einsum(
                    "noyx,oc->ncyx", grad_output, self.weight.data[:, :, i, j], optimize=True
                )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        # Strip padding to recover the gradient w.r.t. the original input.
        _, _, h, w = input_shape
        _, _, (ph0, _), (pw0, _) = self._geometry(h, w)
        return grad_padded[:, :, ph0 : ph0 + h, pw0 : pw0 + w]

    def _backward_im2col(self, grad_output: np.ndarray) -> np.ndarray:
        _, cols, input_shape, padded_shape, out_h, out_w = self._cache
        kh, kw = self.kernel_size
        sh, sw = self.stride
        n = grad_output.shape[0]
        g = np.asarray(grad_output, dtype=np.float64).reshape(
            n, self.out_channels, out_h * out_w
        )
        self.weight.grad += np.einsum("nkl,nol->ok", cols, g, optimize=True).reshape(
            self.weight.grad.shape
        )
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 2))
        grad_cols = np.einsum(
            "nol,ok->nkl", g, self.weight.data.reshape(self.out_channels, -1),
            optimize=True,
        )
        grad_padded = col2im(grad_cols, padded_shape, kh, kw, sh, sw, out_h, out_w)
        _, _, h, w = input_shape
        _, _, (ph0, _), (pw0, _) = self._geometry(h, w)
        return grad_padded[:, :, ph0 : ph0 + h, pw0 : pw0 + w]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, kernel={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding!r})"
        )


__all__ = ["Conv2D", "same_padding", "valid_output", "im2col", "col2im"]
