"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.initializers import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.utils.random import SeedLike, as_rng
from repro.utils.validation import check_positive_int


class Dense(Layer):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    use_bias:
        Whether to add a bias term.
    weight_init:
        Name of an initialiser from :mod:`repro.nn.initializers`.
    rng:
        Seed or generator for the weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        use_bias: bool = True,
        weight_init: str = "glorot",
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        init = get_initializer(weight_init)
        generator = as_rng(rng)
        self.weight = self.add_parameter(
            init((self.in_features, self.out_features), generator), "weight"
        )
        self.use_bias = bool(use_bias)
        self.bias = (
            self.add_parameter(zeros((self.out_features,)), "bias") if self.use_bias else None
        )
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"Dense expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x if training else None
        self.last_forward_flops = 2.0 * x.shape[0] * self.in_features * self.out_features
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        x = self._cache_input
        self.weight.grad += x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features})"


__all__ = ["Dense"]
