"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer
from repro.utils.random import SeedLike, as_rng
from repro.utils.validation import check_probability


class Dropout(Layer):
    """Inverted dropout: active only during training, identity at evaluation.

    Parameters
    ----------
    rate:
        Probability of zeroing each activation.
    rng:
        Seed or generator for the dropout masks (deterministic workers need
        deterministic masks).
    """

    def __init__(self, rate: float = 0.5, *, rng: SeedLike = None) -> None:
        super().__init__()
        self.rate = check_probability(rate, "rate")
        if self.rate >= 1.0:
            raise ConfigurationError("dropout rate must be < 1 (rate=1 would zero everything)")
        self._rng = as_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # Forward ran in evaluation mode (or rate == 0): identity gradient.
            return grad_output
        return grad_output * self._mask


__all__ = ["Dropout"]
