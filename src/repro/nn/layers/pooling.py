"""Spatial pooling layers (NCHW layout)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import _pair, same_padding, valid_output


class _Pool2D(Layer):
    """Shared plumbing for max / average pooling."""

    def __init__(self, pool_size, *, stride=None, padding: str = "same") -> None:
        super().__init__()
        self.pool_size = _pair(pool_size, "pool_size")
        self.stride = _pair(stride if stride is not None else pool_size, "stride")
        padding = str(padding).lower()
        if padding not in ("same", "valid"):
            raise ConfigurationError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.padding = padding
        self._cache: tuple | None = None

    def _geometry(self, h: int, w: int):
        kh, kw = self.pool_size
        sh, sw = self.stride
        if self.padding == "same":
            out_h, ph0, ph1 = same_padding(h, kh, sh)
            out_w, pw0, pw1 = same_padding(w, kw, sw)
        else:
            out_h, ph0, ph1 = valid_output(h, kh, sh), 0, 0
            out_w, pw0, pw1 = valid_output(w, kw, sw), 0, 0
        return out_h, out_w, (ph0, ph1), (pw0, pw1)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Output ``(channels, height, width)`` given an input spatial shape."""
        c, h, w = input_shape
        out_h, out_w, _, _ = self._geometry(h, w)
        return (c, out_h, out_w)

    def _windows(self, padded: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
        """Stack the pooling windows: shape ``(kh*kw, N, C, out_h, out_w)``."""
        kh, kw = self.pool_size
        sh, sw = self.stride
        slices = [
            padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw]
            for i in range(kh)
            for j in range(kw)
        ]
        return np.stack(slices, axis=0)


class MaxPool2D(_Pool2D):
    """Max pooling (the Table-1 CNN uses 3x3 windows with stride 2, SAME padding)."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ConfigurationError(f"MaxPool2D expected NCHW input, got shape {x.shape}")
        n, c, h, w = x.shape
        out_h, out_w, (ph0, ph1), (pw0, pw1) = self._geometry(h, w)
        padded = np.pad(
            x, ((0, 0), (0, 0), (ph0, ph1), (pw0, pw1)), constant_values=-np.inf
        )
        windows = self._windows(padded, out_h, out_w)
        argmax = windows.argmax(axis=0)
        out = np.take_along_axis(windows, argmax[None], axis=0)[0]
        if training:
            self._cache = (argmax, x.shape, padded.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        argmax, input_shape, padded_shape, out_h, out_w = self._cache
        kh, kw = self.pool_size
        sh, sw = self.stride
        grad_padded = np.zeros(padded_shape, dtype=np.float64)
        # Scatter the gradient back to the window position that won the max.
        for idx in range(kh * kw):
            i, j = divmod(idx, kw)
            mask = argmax == idx
            if not mask.any():
                continue
            grad_padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw] += np.where(
                mask, grad_output, 0.0
            )
        _, _, h, w = input_shape
        _, _, (ph0, _), (pw0, _) = self._geometry(h, w)
        return grad_padded[:, :, ph0 : ph0 + h, pw0 : pw0 + w]


class AvgPool2D(_Pool2D):
    """Average pooling (padding positions count as zeros in the average)."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ConfigurationError(f"AvgPool2D expected NCHW input, got shape {x.shape}")
        n, c, h, w = x.shape
        out_h, out_w, (ph0, ph1), (pw0, pw1) = self._geometry(h, w)
        padded = np.pad(x, ((0, 0), (0, 0), (ph0, ph1), (pw0, pw1)))
        windows = self._windows(padded, out_h, out_w)
        out = windows.mean(axis=0)
        if training:
            self._cache = (x.shape, padded.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        input_shape, padded_shape, out_h, out_w = self._cache
        kh, kw = self.pool_size
        sh, sw = self.stride
        grad_padded = np.zeros(padded_shape, dtype=np.float64)
        share = grad_output / float(kh * kw)
        for i in range(kh):
            for j in range(kw):
                grad_padded[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw] += share
        _, _, h, w = input_shape
        _, _, (ph0, _), (pw0, _) = self._geometry(h, w)
        return grad_padded[:, :, ph0 : ph0 + h, pw0 : pw0 + w]


class GlobalAvgPool2D(Layer):
    """Global spatial average: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: tuple | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ConfigurationError(f"GlobalAvgPool2D expected NCHW input, got shape {x.shape}")
        if training:
            self._cache_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        n, c, h, w = self._cache_shape
        return np.broadcast_to(
            grad_output[:, :, None, None] / float(h * w), (n, c, h, w)
        ).copy()


__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]
