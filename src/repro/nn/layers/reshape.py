"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Flatten all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: tuple | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output.reshape(self._cache_shape)


__all__ = ["Flatten"]
