"""Residual block used by the ResNet-like large model of Figure 5(b)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.activations import ReLU
from repro.nn.parameter import Parameter
from repro.utils.random import SeedLike, spawn_rngs


class ResidualBlock(Layer):
    """Two 3x3 convolutions with a skip connection: ``y = relu(f(x) + proj(x))``.

    When the channel count changes (or ``stride != 1``) the skip connection is
    a 1x1 projection convolution, as in standard ResNets.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        stride: int = 1,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rngs = spawn_rngs(rng, 3)
        self.conv1 = Conv2D(
            in_channels, out_channels, 3, stride=stride, padding="same", rng=rngs[0]
        )
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, stride=1, padding="same", rng=rngs[1])
        self.relu2 = ReLU()
        self.needs_projection = (in_channels != out_channels) or (stride != 1)
        self.projection = (
            Conv2D(in_channels, out_channels, 1, stride=stride, padding="same",
                   use_bias=False, rng=rngs[2])
            if self.needs_projection
            else None
        )
        self._cache: tuple | None = None

    def parameters(self) -> List[Parameter]:
        params = self.conv1.parameters() + self.conv2.parameters()
        if self.projection is not None:
            params += self.projection.parameters()
        return params

    def zero_grad(self) -> None:
        self.conv1.zero_grad()
        self.conv2.zero_grad()
        if self.projection is not None:
            self.projection.zero_grad()

    def output_shape(self, input_shape):
        """Output ``(channels, height, width)`` given an input spatial shape."""
        shape = self.conv1.output_shape(input_shape)
        return self.conv2.output_shape(shape)

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        main = self.conv1(x, training=training)
        main = self.relu1(main, training=training)
        main = self.conv2(main, training=training)
        skip = self.projection(x, training=training) if self.projection is not None else x
        self.last_forward_flops = self.conv1.last_forward_flops + self.conv2.last_forward_flops
        if self.projection is not None:
            self.last_forward_flops += self.projection.last_forward_flops
        out = main + skip
        return self.relu2(out, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_output)
        grad_main = self.conv2.backward(grad)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        grad_skip = self.projection.backward(grad) if self.projection is not None else grad
        return grad_main + grad_skip


__all__ = ["ResidualBlock"]
