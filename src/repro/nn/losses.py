"""Loss functions (value + gradient w.r.t. the model output)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy for integer class labels.

    ``forward`` returns the mean loss over the batch; ``backward`` returns the
    gradient of that mean loss with respect to the logits.
    """

    def __init__(self, l2: float = 0.0) -> None:
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.l2 = float(l2)
        self._cache: Tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ConfigurationError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ConfigurationError(
                f"labels must be 1-D of length {logits.shape[0]}, got shape {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ConfigurationError(
                f"labels must lie in [0, {logits.shape[1] - 1}], got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        probs = softmax(logits)
        self._cache = (probs, labels.astype(np.intp))
        picked = probs[np.arange(labels.shape[0]), labels]
        return float(-np.log(np.maximum(picked, 1e-300)).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        grad = probs.copy()
        grad[np.arange(labels.shape[0]), labels] -= 1.0
        return grad / labels.shape[0]

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MeanSquaredError:
    """Mean squared error for regression targets."""

    def __init__(self) -> None:
        self._cache: Tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ConfigurationError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / predictions.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


__all__ = ["softmax", "SoftmaxCrossEntropy", "MeanSquaredError"]
