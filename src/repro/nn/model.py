"""Sequential model: an ordered stack of layers with flat parameter access.

The parameter-server protocol exchanges flat ``(d,)`` vectors — the model
parameters broadcast by the server and the gradient estimates pushed by the
workers — so the model exposes ``get_parameters`` / ``set_parameters`` /
``get_gradients`` in flat form on top of the per-layer tensors.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.parameter import Parameter
from repro.utils.flatten import flatten_arrays, unflatten_array


class Sequential:
    """A feed-forward stack of layers with a classification/regression head.

    Parameters
    ----------
    layers:
        Ordered list of :class:`~repro.nn.layers.base.Layer` instances.
    loss:
        Loss object exposing ``forward(outputs, targets)`` and ``backward()``;
        defaults to softmax cross-entropy (the paper's image-classification
        setting).
    l2:
        Optional L2 regularisation coefficient applied to every parameter
        (mirrors AggregaThor's ``--l2-regularize`` flag).
    name:
        Human-readable model name used in experiment reports.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        *,
        loss=None,
        l2: float = 0.0,
        name: str = "sequential",
    ) -> None:
        if len(layers) == 0:
            raise ConfigurationError("a Sequential model needs at least one layer")
        for layer in layers:
            if not isinstance(layer, Layer):
                raise ConfigurationError(f"{layer!r} is not a Layer")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.layers: List[Layer] = list(layers)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.l2 = float(l2)
        self.name = str(name)
        self._shapes = [p.shape for p in self.parameters()]
        self._last_forward_flops: float = 0.0
        self._last_batch_size: int = 0

    # ----------------------------------------------------------- parameters
    def parameters(self) -> List[Parameter]:
        """All trainable parameters in layer order."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count (the model dimensionality ``d``)."""
        return int(sum(p.size for p in self.parameters()))

    def get_parameters(self) -> np.ndarray:
        """Flat copy of all parameters (the vector the server broadcasts)."""
        flat, _ = flatten_arrays([p.data for p in self.parameters()])
        return flat

    def set_parameters(self, flat: np.ndarray) -> None:
        """Load a flat parameter vector into the model (a worker receiving the model)."""
        arrays = unflatten_array(flat, self._shapes)
        for param, array in zip(self.parameters(), arrays):
            param.data[...] = array

    def get_gradients(self) -> np.ndarray:
        """Flat copy of the accumulated gradients (the vector a worker pushes)."""
        flat, _ = flatten_arrays([p.grad for p in self.parameters()])
        return flat

    def zero_grad(self) -> None:
        """Reset all accumulated gradients."""
        for layer in self.layers:
            layer.zero_grad()

    # ------------------------------------------------------------- compute
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Run the full forward pass and return the final layer output."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer(out, training=training)
        self._last_forward_flops = float(sum(layer.last_forward_flops for layer in self.layers))
        self._last_batch_size = int(x.shape[0]) if hasattr(x, "shape") and x.ndim else 1
        return out

    def flops_per_sample(self) -> float:
        """Forward-pass floating-point operations per sample.

        Measured from the most recent forward pass (convolutions dominate for
        image models, which is what makes the ResNet-like model of Figure 5(b)
        far more compute-heavy per parameter than the Table-1 CNN).  Before
        any forward pass, falls back to the dense estimate ``2 * d``.
        """
        if self._last_batch_size > 0 and self._last_forward_flops > 0:
            return self._last_forward_flops / self._last_batch_size
        return 2.0 * self.num_parameters

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through every layer (reverse order)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def loss_and_gradient(self, x: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        """Mini-batch loss and flat gradient — the worker-side computation.

        Equivalent to one gradient estimation ``G(x, xi)`` of Equation 3: the
        model parameters are left untouched, gradients are freshly accumulated
        for this batch only.
        """
        self.zero_grad()
        outputs = self.forward(x, training=True)
        loss_value = self.loss.forward(outputs, y)
        self.backward(self.loss.backward())
        gradient = self.get_gradients()
        if self.l2 > 0.0:
            params = self.get_parameters()
            loss_value += 0.5 * self.l2 * float(params @ params)
            gradient = gradient + self.l2 * params
        return float(loss_value), gradient

    # ------------------------------------------------------------ inference
    def predict_proba(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Class probabilities (softmax over the final logits)."""
        return softmax(self.predict_logits(x, batch_size=batch_size))

    def predict_logits(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Raw model outputs in evaluation mode, optionally mini-batched."""
        x = np.asarray(x, dtype=np.float64)
        if batch_size is None or x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def predict(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Predicted class indices."""
        return self.predict_logits(x, batch_size=batch_size).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch_size: Optional[int] = 512) -> float:
        """Top-1 accuracy on ``(x, y)`` — the paper's cross-accuracy metric."""
        predictions = self.predict(x, batch_size=batch_size)
        return float((predictions == np.asarray(y)).mean())

    def summary(self) -> str:
        """Human-readable architecture summary with per-layer parameter counts."""
        lines = [f"Model: {self.name} ({self.num_parameters:,} parameters)"]
        for i, layer in enumerate(self.layers):
            lines.append(f"  [{i:2d}] {layer!r:60s} params={layer.num_parameters:,}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential(name={self.name!r}, layers={len(self.layers)}, d={self.num_parameters})"


#: Signature of a model factory: ``(rng) -> Sequential``.
ModelFactory = Callable[..., Sequential]

__all__ = ["Sequential", "ModelFactory"]
