"""Model zoo: the architectures used in the paper's evaluation.

Models are registered by name (mirroring AggregaThor's ``--experiment`` flag)
so experiment drivers can instantiate them from configuration strings via
:func:`make_model`.
"""

from repro.nn.models.registry import MODEL_REGISTRY, available_models, make_model, register_model
from repro.nn.models.logistic import logistic_regression
from repro.nn.models.mlp import mlp
from repro.nn.models.cifar_cnn import cifar_cnn, small_cnn
from repro.nn.models.resnet_like import resnet_like

__all__ = [
    "MODEL_REGISTRY",
    "available_models",
    "make_model",
    "register_model",
    "logistic_regression",
    "mlp",
    "cifar_cnn",
    "small_cnn",
    "resnet_like",
]
