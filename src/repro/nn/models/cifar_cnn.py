"""The Table-1 CNN of the paper (and a scaled-down variant for fast tests).

Table 1 of the paper:

======== ========= ======= ========= ======= ===== ===== =====
Input    Conv1     Pool1   Conv2     Pool2   FC1   FC2   FC3
======== ========= ======= ========= ======= ===== ===== =====
32x32x3  5x5x64 /1 3x3 /2  5x5x64 /1 3x3 /2  384   192   10
======== ========= ======= ========= ======= ===== ===== =====

With TensorFlow SAME padding this yields 8x8x64 = 4096 features entering FC1
and a total of roughly 1.75 million trainable parameters, matching the paper's
description of the model.
"""

from __future__ import annotations

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential
from repro.nn.models.registry import register_model
from repro.utils.random import SeedLike, spawn_rngs


@register_model("cifar-cnn")
def cifar_cnn(
    *,
    image_size: int = 32,
    channels: int = 3,
    num_classes: int = 10,
    conv_filters: int = 64,
    fc1: int = 384,
    fc2: int = 192,
    l2: float = 0.0,
    rng: SeedLike = None,
) -> Sequential:
    """Build the Table-1 CNN (defaults reproduce the 1.75M-parameter model).

    Parameters other than the defaults allow scaled-down instances (smaller
    images / fewer filters) that keep the same architecture shape but train in
    seconds on a laptop — used by the fast experiment profile.
    """
    rngs = spawn_rngs(rng, 5)
    # Two SAME 3x3/2 poolings shrink the spatial size by ceil(./2) twice.
    after_pool1 = -(-image_size // 2)
    after_pool2 = -(-after_pool1 // 2)
    flat_features = after_pool2 * after_pool2 * conv_filters
    layers = [
        Conv2D(channels, conv_filters, 5, stride=1, padding="same", rng=rngs[0]),
        ReLU(),
        MaxPool2D(3, stride=2, padding="same"),
        Conv2D(conv_filters, conv_filters, 5, stride=1, padding="same", rng=rngs[1]),
        ReLU(),
        MaxPool2D(3, stride=2, padding="same"),
        Flatten(),
        Dense(flat_features, fc1, weight_init="he", rng=rngs[2]),
        ReLU(),
        Dense(fc1, fc2, weight_init="he", rng=rngs[3]),
        ReLU(),
        Dense(fc2, num_classes, rng=rngs[4]),
    ]
    return Sequential(layers, l2=l2, name=f"cifar-cnn-{image_size}x{image_size}x{channels}")


@register_model("small-cnn")
def small_cnn(
    *,
    image_size: int = 8,
    channels: int = 3,
    num_classes: int = 10,
    conv_filters: int = 8,
    fc1: int = 32,
    fc2: int = 16,
    l2: float = 0.0,
    rng: SeedLike = None,
) -> Sequential:
    """A miniature Table-1 CNN (same layer sequence, ~thousands of parameters).

    Used by unit tests and the fast experiment profile so that full
    distributed-training experiments finish in seconds while still exercising
    every layer type of the paper-scale model.
    """
    return cifar_cnn(
        image_size=image_size,
        channels=channels,
        num_classes=num_classes,
        conv_filters=conv_filters,
        fc1=fc1,
        fc2=fc2,
        l2=l2,
        rng=rng,
    )


__all__ = ["cifar_cnn", "small_cnn"]
