"""Multinomial logistic regression (a single Dense layer)."""

from __future__ import annotations

from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.models.registry import register_model
from repro.utils.random import SeedLike


@register_model("logistic")
def logistic_regression(
    *, input_dim: int = 32, num_classes: int = 10, l2: float = 0.0, rng: SeedLike = None
) -> Sequential:
    """A convex softmax classifier.

    Useful for fast unit tests and for verifying convergence behaviour where
    the optimum is unique (so every GAR must reach the same loss).
    """
    return Sequential(
        [Dense(input_dim, num_classes, rng=rng)],
        l2=l2,
        name=f"logistic-{input_dim}x{num_classes}",
    )


__all__ = ["logistic_regression"]
