"""Multi-layer perceptron factory."""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.model import Sequential
from repro.nn.models.registry import register_model
from repro.utils.random import SeedLike, spawn_rngs


@register_model("mlp")
def mlp(
    *,
    input_dim: int = 64,
    hidden: Sequence[int] = (64, 32),
    num_classes: int = 10,
    dropout: float = 0.0,
    l2: float = 0.0,
    rng: SeedLike = None,
) -> Sequential:
    """Fully connected ReLU network.

    The default size is the scaled-down stand-in for the paper's CNN used by
    the fast ("ci") experiment profile; the hidden widths and input size are
    fully configurable for the paper-scale profile.
    """
    # A single int is accepted as shorthand for one hidden layer (convenient
    # for command-line usage: --experiment-args "hidden:32").
    if isinstance(hidden, (int,)):
        hidden = [hidden]
    hidden = list(hidden)
    if any(h < 1 for h in hidden):
        raise ConfigurationError(f"hidden sizes must be positive, got {hidden}")
    rngs = spawn_rngs(rng, len(hidden) + 1)
    layers = []
    previous = input_dim
    for width, layer_rng in zip(hidden, rngs):
        layers.append(Dense(previous, width, weight_init="he", rng=layer_rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng=layer_rng))
        previous = width
    layers.append(Dense(previous, num_classes, rng=rngs[-1]))
    return Sequential(layers, l2=l2, name=f"mlp-{input_dim}-{'x'.join(map(str, hidden))}-{num_classes}")


__all__ = ["mlp"]
