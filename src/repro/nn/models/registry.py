"""Model registry (the ``--experiment`` analogue of AggregaThor's runner)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import ConfigurationError
from repro.nn.model import Sequential

#: name -> factory returning a freshly initialised Sequential model.
MODEL_REGISTRY: Dict[str, Callable[..., Sequential]] = {}


def register_model(name: str):
    """Decorator registering a model factory under *name*."""

    def decorator(factory: Callable[..., Sequential]):
        existing = MODEL_REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ConfigurationError(f"model name {name!r} already registered")
        MODEL_REGISTRY[name] = factory
        return factory

    return decorator


def make_model(name: str, **kwargs) -> Sequential:
    """Instantiate a registered model factory by name."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from exc
    return factory(**kwargs)


def available_models() -> list[str]:
    """Names of all registered models, sorted."""
    return sorted(MODEL_REGISTRY)


__all__ = ["MODEL_REGISTRY", "register_model", "make_model", "available_models"]
