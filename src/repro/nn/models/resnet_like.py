"""A residual network standing in for ResNet-50 in the Figure 5(b) experiment.

The paper uses ResNet-50 only to show that when gradient *computation* is much
more expensive than gradient *aggregation*, the robust GARs scale as well as
averaging.  What matters for that experiment is the compute-to-aggregation
ratio, not the exact architecture, so this factory builds a configurable-depth
residual CNN whose default instantiation is an order of magnitude more
expensive per gradient than the Table-1 CNN.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.nn.layers import Conv2D, Dense, GlobalAvgPool2D, ReLU, ResidualBlock
from repro.nn.model import Sequential
from repro.nn.models.registry import register_model
from repro.utils.random import SeedLike, spawn_rngs


@register_model("resnet-like")
def resnet_like(
    *,
    image_size: int = 32,
    channels: int = 3,
    num_classes: int = 10,
    stage_channels: Sequence[int] = (32, 64, 128),
    blocks_per_stage: int = 2,
    l2: float = 0.0,
    rng: SeedLike = None,
) -> Sequential:
    """Residual CNN: a stem convolution, several residual stages, global pooling.

    Each stage halves the spatial resolution (stride-2 first block) and uses
    ``blocks_per_stage`` residual blocks.
    """
    stage_channels = list(stage_channels)
    if len(stage_channels) == 0:
        raise ConfigurationError("stage_channels must be non-empty")
    if blocks_per_stage < 1:
        raise ConfigurationError(f"blocks_per_stage must be >= 1, got {blocks_per_stage}")
    n_rngs = 2 + len(stage_channels) * blocks_per_stage
    rngs = spawn_rngs(rng, n_rngs)
    rng_iter = iter(rngs)

    layers = [
        Conv2D(channels, stage_channels[0], 3, stride=1, padding="same", rng=next(rng_iter)),
        ReLU(),
    ]
    in_channels = stage_channels[0]
    for stage_idx, out_channels in enumerate(stage_channels):
        for block_idx in range(blocks_per_stage):
            stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
            layers.append(
                ResidualBlock(in_channels, out_channels, stride=stride, rng=next(rng_iter))
            )
            in_channels = out_channels
    layers.append(GlobalAvgPool2D())
    layers.append(Dense(in_channels, num_classes, rng=next(rng_iter)))
    return Sequential(
        layers,
        l2=l2,
        name=f"resnet-like-{len(stage_channels)}x{blocks_per_stage}",
    )


__all__ = ["resnet_like"]
