"""Trainable parameter container."""

from __future__ import annotations


import numpy as np


class Parameter:
    """A named trainable tensor and its accumulated gradient.

    Layers own their parameters; the model gathers them to expose the flat
    parameter / gradient vectors exchanged with the parameter server.
    """

    __slots__ = ("name", "data", "grad")

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.name = str(name)
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.shape})"


__all__ = ["Parameter"]
