"""Optimizers and learning-rate schedules (server-side update rules).

Mirrors the ``--optimizer`` / ``--learning-rate`` flags of AggregaThor's
runner: the parameter server applies the aggregated gradient to the flat model
vector through one of these update rules.
"""

from repro.optim.base import Optimizer, OPTIMIZER_REGISTRY, make_optimizer, register_optimizer
from repro.optim.sgd import SGD, MomentumSGD
from repro.optim.adaptive import Adam, RMSprop, Adagrad, Adadelta
from repro.optim.schedules import (
    LearningRateSchedule,
    FixedSchedule,
    PolynomialDecay,
    ExponentialDecay,
    StepDecay,
    InverseTimeDecay,
    make_schedule,
)

__all__ = [
    "Optimizer",
    "OPTIMIZER_REGISTRY",
    "make_optimizer",
    "register_optimizer",
    "SGD",
    "MomentumSGD",
    "Adam",
    "RMSprop",
    "Adagrad",
    "Adadelta",
    "LearningRateSchedule",
    "FixedSchedule",
    "PolynomialDecay",
    "ExponentialDecay",
    "StepDecay",
    "InverseTimeDecay",
    "make_schedule",
]
