"""Adaptive optimizers: RMSprop (the paper's default), Adam, Adagrad, Adadelta."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.base import Optimizer, register_optimizer


def _check_unit_interval(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
    return value


@register_optimizer("rmsprop")
class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton) — the optimizer of the paper's evaluation.

    The paper uses a fixed initial learning rate of 1e-3 with RMSprop for
    every convergence experiment.
    """

    def __init__(self, learning_rate=1e-3, decay: float = 0.9, eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        self.decay = _check_unit_interval(decay, "decay")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._mean_square: np.ndarray | None = None

    def _update(self, gradient: np.ndarray) -> np.ndarray:
        if self._mean_square is None or self._mean_square.shape != gradient.shape:
            self._mean_square = np.zeros_like(gradient)
        self._mean_square = self.decay * self._mean_square + (1 - self.decay) * gradient**2
        return self.learning_rate() * gradient / (np.sqrt(self._mean_square) + self.eps)

    def reset(self) -> None:
        super().reset()
        self._mean_square = None


@register_optimizer("adam")
class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    def __init__(self, learning_rate=1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        self.beta1 = _check_unit_interval(beta1, "beta1")
        self.beta2 = _check_unit_interval(beta2, "beta2")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None

    def _update(self, gradient: np.ndarray) -> np.ndarray:
        if self._m is None or self._m.shape != gradient.shape:
            self._m = np.zeros_like(gradient)
            self._v = np.zeros_like(gradient)
        t = self.step_count + 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * gradient
        self._v = self.beta2 * self._v + (1 - self.beta2) * gradient**2
        m_hat = self._m / (1 - self.beta1**t)
        v_hat = self._v / (1 - self.beta2**t)
        return self.learning_rate() * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        super().reset()
        self._m = None
        self._v = None


@register_optimizer("adagrad")
class Adagrad(Optimizer):
    """Adagrad: per-coordinate rates decaying with accumulated squared gradients."""

    def __init__(self, learning_rate=1e-2, eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._accumulator: np.ndarray | None = None

    def _update(self, gradient: np.ndarray) -> np.ndarray:
        if self._accumulator is None or self._accumulator.shape != gradient.shape:
            self._accumulator = np.zeros_like(gradient)
        self._accumulator += gradient**2
        return self.learning_rate() * gradient / (np.sqrt(self._accumulator) + self.eps)

    def reset(self) -> None:
        super().reset()
        self._accumulator = None


@register_optimizer("adadelta")
class Adadelta(Optimizer):
    """Adadelta: Adagrad variant with exponentially decaying accumulators."""

    def __init__(self, learning_rate=1.0, rho: float = 0.95, eps: float = 1e-6) -> None:
        super().__init__(learning_rate)
        self.rho = _check_unit_interval(rho, "rho")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._accum_grad: np.ndarray | None = None
        self._accum_update: np.ndarray | None = None

    def _update(self, gradient: np.ndarray) -> np.ndarray:
        if self._accum_grad is None or self._accum_grad.shape != gradient.shape:
            self._accum_grad = np.zeros_like(gradient)
            self._accum_update = np.zeros_like(gradient)
        self._accum_grad = self.rho * self._accum_grad + (1 - self.rho) * gradient**2
        update = (
            np.sqrt(self._accum_update + self.eps)
            / np.sqrt(self._accum_grad + self.eps)
            * gradient
        )
        self._accum_update = self.rho * self._accum_update + (1 - self.rho) * update**2
        return self.learning_rate() * update

    def reset(self) -> None:
        super().reset()
        self._accum_grad = None
        self._accum_update = None


__all__ = ["RMSprop", "Adam", "Adagrad", "Adadelta"]
