"""Optimizer base class and registry.

Optimizers operate on flat parameter vectors — the representation the
parameter server holds — and are driven by a learning-rate schedule
(:mod:`repro.optim.schedules`).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Type, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.schedules import FixedSchedule, LearningRateSchedule


class Optimizer(abc.ABC):
    """Stateful update rule ``x_{k+1} = x_k - step(gradient, k)``.

    Parameters
    ----------
    learning_rate:
        A float (constant learning rate) or a
        :class:`~repro.optim.schedules.LearningRateSchedule`.
    """

    name: str = "abstract"

    def __init__(self, learning_rate: Union[float, LearningRateSchedule] = 1e-3) -> None:
        if isinstance(learning_rate, LearningRateSchedule):
            self.schedule = learning_rate
        else:
            lr = float(learning_rate)
            if lr <= 0:
                raise ConfigurationError(f"learning_rate must be positive, got {lr}")
            self.schedule = FixedSchedule(lr)
        self.step_count = 0

    def learning_rate(self) -> float:
        """Learning rate at the current step."""
        return self.schedule(self.step_count)

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Apply one update and return the new parameter vector.

        Both inputs are flat ``(d,)`` vectors; the returned array is new (the
        inputs are never modified in place), matching the server semantics of
        broadcasting a fresh model each step.
        """
        parameters = np.asarray(parameters, dtype=np.float64)
        gradient = np.asarray(gradient, dtype=np.float64)
        if parameters.shape != gradient.shape:
            raise ConfigurationError(
                f"parameter shape {parameters.shape} != gradient shape {gradient.shape}"
            )
        update = self._update(gradient)
        self.step_count += 1
        return parameters - update

    @abc.abstractmethod
    def _update(self, gradient: np.ndarray) -> np.ndarray:
        """Compute the (already learning-rate-scaled) update vector."""

    def reset(self) -> None:
        """Clear all internal state (moments, accumulators, step count)."""
        self.step_count = 0

    # --------------------------------------------------------- checkpointing
    def state_dict(self) -> Dict[str, object]:
        """All mutable state (step count, moment vectors) in copyable form.

        Hyper-parameters and the learning-rate schedule are configuration,
        not state — a restored optimizer is expected to have been constructed
        with the same configuration.
        """
        state: Dict[str, object] = {}
        for key, value in self.__dict__.items():
            if key == "schedule":
                continue
            if isinstance(value, np.ndarray):
                state[key] = value.copy()
            elif value is None or isinstance(value, (bool, int, float, str)):
                state[key] = value
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        for key, value in state.items():
            if key == "schedule" or not hasattr(self, key):
                raise ConfigurationError(
                    f"{type(self).__name__} has no state slot {key!r}; was the "
                    "checkpoint written by a different optimizer?"
                )
            setattr(self, key, value.copy() if isinstance(value, np.ndarray) else value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(lr={self.schedule!r})"


#: name -> optimizer class registry (``--optimizer`` analogue).
OPTIMIZER_REGISTRY: Dict[str, Type[Optimizer]] = {}


def register_optimizer(name: str) -> Callable[[Type[Optimizer]], Type[Optimizer]]:
    """Decorator registering an optimizer class under *name*."""

    def decorator(cls: Type[Optimizer]) -> Type[Optimizer]:
        existing = OPTIMIZER_REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ConfigurationError(f"optimizer name {name!r} already registered")
        cls.name = name
        OPTIMIZER_REGISTRY[name] = cls
        return cls

    return decorator


def make_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate a registered optimizer by name."""
    try:
        cls = OPTIMIZER_REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; available: {sorted(OPTIMIZER_REGISTRY)}"
        ) from exc
    return cls(**kwargs)


__all__ = ["Optimizer", "OPTIMIZER_REGISTRY", "register_optimizer", "make_optimizer"]
