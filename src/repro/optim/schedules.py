"""Learning-rate schedules (``--learning-rate`` analogue).

The paper's runner exposes fixed, polynomial-decay and exponential-decay
schedules (mapping to ``tf.constant``, ``tf.train.polynomial_decay`` and
``tf.train.exponential_decay``); step decay and inverse-time decay are added
for completeness.  The inverse-time schedule also satisfies the
``sum(gamma_t) = inf, sum(gamma_t^2) < inf`` condition of the convergence
proof (Lemma 2).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

from repro.exceptions import ConfigurationError


class LearningRateSchedule(abc.ABC):
    """Maps a step index to a learning rate."""

    @abc.abstractmethod
    def __call__(self, step: int) -> float:
        """Learning rate at *step* (0-based)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _check_positive(value: float, name: str) -> float:
    value = float(value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


class FixedSchedule(LearningRateSchedule):
    """Constant learning rate (the paper's default: 1e-3)."""

    def __init__(self, learning_rate: float) -> None:
        self.learning_rate = _check_positive(learning_rate, "learning_rate")

    def __call__(self, step: int) -> float:
        return self.learning_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedSchedule({self.learning_rate})"


class PolynomialDecay(LearningRateSchedule):
    """Polynomial decay from ``initial`` to ``final`` over ``decay_steps`` steps."""

    def __init__(self, initial: float, final: float, decay_steps: int, power: float = 1.0) -> None:
        self.initial = _check_positive(initial, "initial")
        self.final = float(final)
        if self.final < 0:
            raise ConfigurationError(f"final must be non-negative, got {final}")
        if decay_steps < 1:
            raise ConfigurationError(f"decay_steps must be >= 1, got {decay_steps}")
        self.decay_steps = int(decay_steps)
        self.power = _check_positive(power, "power")

    def __call__(self, step: int) -> float:
        progress = min(max(step, 0), self.decay_steps) / self.decay_steps
        return (self.initial - self.final) * (1.0 - progress) ** self.power + self.final


class ExponentialDecay(LearningRateSchedule):
    """``initial * decay_rate ** (step / decay_steps)``."""

    def __init__(self, initial: float, decay_rate: float, decay_steps: int) -> None:
        self.initial = _check_positive(initial, "initial")
        self.decay_rate = _check_positive(decay_rate, "decay_rate")
        if decay_steps < 1:
            raise ConfigurationError(f"decay_steps must be >= 1, got {decay_steps}")
        self.decay_steps = int(decay_steps)

    def __call__(self, step: int) -> float:
        return self.initial * self.decay_rate ** (max(step, 0) / self.decay_steps)


class StepDecay(LearningRateSchedule):
    """Multiply the rate by ``factor`` every ``every`` steps."""

    def __init__(self, initial: float, factor: float = 0.5, every: int = 1000) -> None:
        self.initial = _check_positive(initial, "initial")
        self.factor = _check_positive(factor, "factor")
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self.every = int(every)

    def __call__(self, step: int) -> float:
        return self.initial * self.factor ** (max(step, 0) // self.every)


class InverseTimeDecay(LearningRateSchedule):
    """``initial / (1 + decay_rate * step)`` — satisfies the SGD convergence conditions."""

    def __init__(self, initial: float, decay_rate: float = 0.01) -> None:
        self.initial = _check_positive(initial, "initial")
        self.decay_rate = _check_positive(decay_rate, "decay_rate")

    def __call__(self, step: int) -> float:
        return self.initial / (1.0 + self.decay_rate * max(step, 0))


SCHEDULE_REGISTRY: Dict[str, Callable[..., LearningRateSchedule]] = {
    "fixed": FixedSchedule,
    "polynomial": PolynomialDecay,
    "exponential": ExponentialDecay,
    "step": StepDecay,
    "inverse-time": InverseTimeDecay,
}


def make_schedule(name: str, **kwargs) -> LearningRateSchedule:
    """Instantiate a schedule by name (``--learning-rate`` analogue)."""
    try:
        factory = SCHEDULE_REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown schedule {name!r}; available: {sorted(SCHEDULE_REGISTRY)}"
        ) from exc
    return factory(**kwargs)


__all__ = [
    "LearningRateSchedule",
    "FixedSchedule",
    "PolynomialDecay",
    "ExponentialDecay",
    "StepDecay",
    "InverseTimeDecay",
    "SCHEDULE_REGISTRY",
    "make_schedule",
]
