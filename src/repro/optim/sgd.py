"""Plain SGD and momentum SGD."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.base import Optimizer, register_optimizer


@register_optimizer("sgd")
class SGD(Optimizer):
    """Vanilla stochastic gradient descent (Equation 2 of the paper)."""

    def _update(self, gradient: np.ndarray) -> np.ndarray:
        return self.learning_rate() * gradient

    def reset(self) -> None:
        super().reset()


@register_optimizer("momentum")
class MomentumSGD(Optimizer):
    """SGD with (optionally Nesterov) momentum."""

    def __init__(self, learning_rate=1e-3, momentum: float = 0.9, nesterov: bool = False) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: np.ndarray | None = None

    def _update(self, gradient: np.ndarray) -> np.ndarray:
        lr = self.learning_rate()
        if self._velocity is None or self._velocity.shape != gradient.shape:
            self._velocity = np.zeros_like(gradient)
        self._velocity = self.momentum * self._velocity + gradient
        if self.nesterov:
            return lr * (self.momentum * self._velocity + gradient)
        return lr * self._velocity

    def reset(self) -> None:
        super().reset()
        self._velocity = None


__all__ = ["SGD", "MomentumSGD"]
