"""Command-line runner — the analogue of AggregaThor's ``runner.py``.

Builds and runs one training session on the simulated cluster entirely from
command-line flags, mirroring the original tool's interface where it makes
sense for a simulation::

    python -m repro.runner \
        --aggregator multi-krum --nb-workers 11 --nb-decl-byz 2 \
        --nb-real-byz 2 --attack reversed-gradient \
        --experiment mlp --dataset blobs \
        --optimizer rmsprop --learning-rate 1e-3 --batch-size 32 \
        --max-step 100 --evaluation-delta 10 \
        --output results.json

Leaving ``--aggregator`` or ``--experiment`` empty prints the available
registered names, exactly like the original runner does.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.attacks.base import ATTACK_REGISTRY
from repro.cluster.builder import build_trainer
from repro.cluster.codec import CODEC_REGISTRY, QSGDCodec, available_codecs
from repro.cluster.checkpoint import (
    Checkpoint,
    CheckpointManager,
    write_summary_csv,
)
from repro.cluster.cost_model import StragglerModel
from repro.cluster.profiler import SimProfiler
from repro.cluster.service import parse_server_topology
from repro.cluster.sync import available_sync_policies
from repro.cluster.trainer import TrainerConfig
from repro.core.base import available_gars
from repro.data.datasets import available_datasets, load_dataset
from repro.exceptions import ConfigurationError, ReproError, TrainingError
from repro.nn.models.registry import available_models
from repro.optim.base import OPTIMIZER_REGISTRY


def build_parser() -> argparse.ArgumentParser:
    """The command-line interface (kept close to AggregaThor's flag names)."""
    parser = argparse.ArgumentParser(
        prog="repro.runner",
        description="Byzantine-resilient distributed SGD on a simulated parameter-server cluster",
    )
    parser.add_argument("--aggregator", default="multi-krum",
                        help="gradient aggregation rule (empty string lists the options)")
    parser.add_argument("--experiment", default="mlp",
                        help="model to train (empty string lists the options)")
    parser.add_argument("--experiment-args", default="",
                        help="space-separated model arguments, e.g. 'input_dim:16 num_classes:4'")
    parser.add_argument("--dataset", default="blobs",
                        help="dataset name (empty string lists the options)")
    parser.add_argument("--dataset-args", default="",
                        help="space-separated dataset arguments, e.g. 'num_train:800 dim:16'")
    parser.add_argument("--nb-workers", type=int, default=11, help="total number of workers n")
    parser.add_argument("--nb-decl-byz", type=int, default=None,
                        help="declared f (defaults to the number of real Byzantine workers)")
    parser.add_argument("--nb-real-byz", type=int, default=0,
                        help="number of actually Byzantine workers")
    parser.add_argument("--attack", default=None, help="Byzantine behaviour (see repro.attacks)")
    parser.add_argument("--nb-corrupted", type=int, default=0,
                        help="number of honest workers with corrupted local data")
    parser.add_argument("--optimizer", default="rmsprop",
                        choices=sorted(OPTIMIZER_REGISTRY), help="server-side update rule")
    parser.add_argument("--learning-rate", type=float, default=1e-3)
    parser.add_argument("--batch-size", type=int, default=100)
    parser.add_argument("--max-step", type=int, default=100, help="number of model updates")
    parser.add_argument("--evaluation-delta", type=int, default=10,
                        help="evaluate accuracy every this many steps (0 disables)")
    parser.add_argument("--checkpoint-delta", type=int, default=0,
                        help="save a checkpoint every this many steps (0 disables)")
    parser.add_argument("--checkpoint-dir", default="checkpoints")
    parser.add_argument("--mode", default="sync", choices=["sync", "async"],
                        help="lock-step rounds (sync) or the event-driven server actor (async)")
    parser.add_argument("--max-version-lag", type=int, default=None,
                        help="async mode: hard bound on the admitted gradients' model-version "
                             "lag (defaults to the policy's own bound)")
    parser.add_argument("--sync-policy", default="full-sync",
                        help="synchrony policy (empty string lists the options)")
    parser.add_argument("--quorum-size", type=int, default=None,
                        help="gradients to wait for per step (quorum / bounded-staleness "
                             "policies; defaults to n - f)")
    parser.add_argument("--straggler-policy", default="drop",
                        choices=["drop", "carry"],
                        help="what the quorum policy does with late gradients")
    parser.add_argument("--staleness-bound", type=int, default=1,
                        help="maximum gradient staleness tau (bounded-staleness policy)")
    parser.add_argument("--straggler-model", default="none",
                        choices=["none", "lognormal", "pareto", "constant"],
                        help="heavy-tailed per-step compute slowdown distribution")
    parser.add_argument("--straggler-prob", type=float, default=1.0,
                        help="probability a worker straggles in a given step")
    parser.add_argument("--straggler-intensity", type=float, default=None,
                        help="sigma (lognormal) / scale (pareto, constant) of the slowdown; "
                             "defaults per distribution (0.75 / 1.0 / 2.0)")
    parser.add_argument("--codec", default="identity",
                        help="wire codec encoding gradients before the uplink "
                             "(empty string lists the options)")
    parser.add_argument("--codec-k", type=int, default=None,
                        help="coordinates kept per gradient (top-k / random-k codecs)")
    parser.add_argument("--quantize-bits", type=int, default=None,
                        help="quantisation width in bits (qsgd codec, 1-16)")
    parser.add_argument("--no-error-feedback", action="store_true",
                        help="disable the EF-SGD residual carry for lossy codecs")
    parser.add_argument("--broadcast-codec", default=None,
                        help="downlink codec: model fetches travel as codec-encoded "
                             "version deltas against each worker's held state "
                             "(default: raw full-state 4d framing; empty string "
                             "lists the options)")
    parser.add_argument("--broadcast-k", type=int, default=None,
                        help="coordinates kept per delta broadcast "
                             "(top-k / random-k broadcast codecs)")
    parser.add_argument("--broadcast-bits", type=int, default=None,
                        help="quantisation width in bits (qsgd broadcast codec, 1-16)")
    parser.add_argument("--link-sharing", default="none",
                        choices=["none", "fair", "fifo"],
                        help="how concurrent transfers share the server's link: "
                             "none (infinite capacity, the seed semantics), fair "
                             "(processor sharing) or fifo (store-and-forward)")
    parser.add_argument("--link-profile", default="symmetric",
                        help="wire topology: 'symmetric' (one shared pipe, the "
                             "seed semantics) or 'wan:<regions>x<bandwidth>[/<latency>]' "
                             "(per-region shared bottlenecks, workers round-robin), "
                             "e.g. 'wan:3x10mbit/40ms'")
    parser.add_argument("--server-topology", default=None,
                        help="parameter-service layout: 'single' (default), "
                             "'shards:N' (N server actors each owning a "
                             "contiguous parameter shard), 'replicas:R' (R "
                             "deterministic full-model replicas) or "
                             "'region-sharded' (one shard per WAN region of "
                             "--link-profile).  shards:1 is bit-identical to "
                             "the single server")
    parser.add_argument("--server-cores", type=int, default=1,
                        help="simulated server cores the aggregation's parallelisable "
                             "work (distance matrix, coordinate-wise trimming) is "
                             "sharded across (default 1 = the seed pricing)")
    parser.add_argument("--distance-cache", default="off", choices=["on", "off"],
                        help="cross-round pairwise-distance cache for the selection "
                             "GARs: gradients stay bit-identical, but simulated "
                             "aggregation time charges only the distance blocks not "
                             "already held (carried re-submissions and blocks warmed "
                             "during the quorum wait are free)")
    parser.add_argument("--measured-aggregation", action="store_true",
                        help="time the aggregation stage from the live NumPy "
                             "execution instead of the analytic flop model "
                             "(machine-dependent: incompatible with "
                             "--determinism-check)")
    parser.add_argument("--determinism-check", action="store_true",
                        help="run the configured session twice and fail unless the "
                             "two telemetry summaries are identical")
    parser.add_argument("--profile", action="store_true",
                        help="time the simulator's own subsystems (event dispatch, "
                             "codec, link drain, GAR kernel, telemetry, compute) and "
                             "print a host wall-clock breakdown; the profile rides in "
                             "the output JSON but never in the determinism comparison "
                             "(host timings are machine-dependent)")
    parser.add_argument("--no-vectorized", action="store_true",
                        help="force the legacy per-worker collect loop instead of the "
                             "vectorised fleet path (bit-identical results either way; "
                             "the fleet benchmark's reference)")
    parser.add_argument("--compute-mode", default="exact", choices=["exact", "fleet"],
                        help="honest gradient computation: exact (every worker's own "
                             "backprop, bit-identical to the seed) or fleet (one "
                             "batched kernel pass over all honest workers — "
                             "statistically equivalent, not bitwise)")
    parser.add_argument("--gar-selection", default="vectorized",
                        choices=["vectorized", "loop"],
                        help="how selection GARs (multi-krum, bulyan, brute) extract "
                             "their winners: the batched numpy kernels (default) or "
                             "the retained per-candidate reference loops — both "
                             "select identically; loop is the perf baseline/oracle")
    parser.add_argument("--compact-telemetry", action="store_true",
                        help="store per-worker wire counters in preallocated arrays "
                             "instead of per-worker objects (identical exports; "
                             "recommended at 1k+ workers)")
    parser.add_argument("--lossy-links", type=int, default=0,
                        help="number of worker uplinks using the lossy UDP-like transport")
    parser.add_argument("--drop-rate", type=float, default=0.0, help="per-packet drop probability")
    parser.add_argument("--recovery-policy", default="random-fill",
                        choices=["drop-gradient", "nan-fill", "random-fill"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="write the run summary to this JSON file")
    parser.add_argument("--summary-csv", default=None, help="write the accuracy series to this CSV")
    return parser


def _parse_kv_args(text: str) -> dict:
    """Parse AggregaThor-style 'key:value key:value' argument strings."""
    result: dict = {}
    for token in text.split():
        if ":" not in token:
            raise ConfigurationError(f"malformed argument {token!r}; expected key:value")
        key, value = token.split(":", 1)
        for caster in (int, float):
            try:
                result[key] = caster(value)
                break
            except ValueError:
                continue
        else:
            result[key] = value
    return result


def _validate_cluster_flags(args) -> None:
    """Reject inconsistent synchrony / quorum flag combinations early.

    The builder and policy layers validate again, but the CLI checks produce
    messages phrased in terms of the flags the operator actually typed.
    """
    if args.staleness_bound < 1:
        raise ConfigurationError(
            f"--staleness-bound must be >= 1, got {args.staleness_bound}; a bound "
            "below 1 would forbid every carried gradient (use --sync-policy quorum "
            "--straggler-policy drop to discard stragglers instead)"
        )
    if args.quorum_size is not None:
        n = args.nb_workers
        f = args.nb_decl_byz if args.nb_decl_byz is not None else args.nb_real_byz
        floor = n - f
        if not floor <= args.quorum_size <= n:
            raise ConfigurationError(
                f"--quorum-size {args.quorum_size} is outside [n - f, n] = "
                f"[{floor}, {n}] (n = --nb-workers = {n}, f = {f}); a quorum below "
                "n - f could be outvoted by the adversary, and one above n can "
                "never fill"
            )
    if args.mode == "async" and args.sync_policy == "full-sync":
        raise ConfigurationError(
            "--mode async is incompatible with --sync-policy full-sync: the "
            "lock-step protocol has no event-stream form.  Pick --sync-policy "
            "quorum or bounded-staleness, or drop --mode async."
        )
    if args.server_cores < 1:
        raise ConfigurationError(
            f"--server-cores must be >= 1, got {args.server_cores}"
        )
    if args.server_topology is not None:
        # Validate the grammar up front so the operator sees the flag name.
        topology = parse_server_topology(args.server_topology)
        if topology.kind == "region-sharded" and not str(
            args.link_profile or ""
        ).startswith("wan:"):
            raise ConfigurationError(
                "--server-topology region-sharded needs a WAN wire topology "
                "to shard across; pass --link-profile "
                "'wan:<regions>x<bandwidth>[/<latency>]'"
            )
    if args.measured_aggregation and args.determinism_check:
        raise ConfigurationError(
            "--measured-aggregation is incompatible with --determinism-check: "
            "measured mode times the host wall-clock inside the simulation, "
            "which is machine- and load-dependent, so two replays of the same "
            "configuration cannot produce identical telemetry.  Drop one of "
            "the two flags (the analytic cost model is the deterministic "
            "default)."
        )
    _validate_codec_flags(args)


def _validate_codec_flags(args) -> None:
    """Reject inconsistent wire-codec flag combinations early."""
    codec_class = CODEC_REGISTRY.get(args.codec)
    if codec_class is None:
        raise ConfigurationError(
            f"unknown codec {args.codec!r}; available: {available_codecs()}"
        )
    sparsifying = bool(getattr(codec_class, "sparsifying", False))
    sparsifier_names = sorted(
        name for name, cls in CODEC_REGISTRY.items()
        if getattr(cls, "sparsifying", False)
    )
    if args.codec_k is not None and not sparsifying:
        raise ConfigurationError(
            f"--codec-k only applies to the sparsifying codecs "
            f"({', '.join(sparsifier_names)}); --codec is {args.codec!r}"
        )
    if sparsifying and args.codec_k is None:
        raise ConfigurationError(
            f"--codec {args.codec} requires --codec-k (coordinates kept per gradient)"
        )
    if args.codec_k is not None and args.codec_k < 1:
        raise ConfigurationError(f"--codec-k must be >= 1, got {args.codec_k}")
    if args.quantize_bits is not None and args.codec != "qsgd":
        raise ConfigurationError(
            f"--quantize-bits only applies to the qsgd codec; --codec is {args.codec!r}"
        )
    if args.quantize_bits is not None and not (
        QSGDCodec.MIN_BITS <= args.quantize_bits <= QSGDCodec.MAX_BITS
    ):
        raise ConfigurationError(
            f"--quantize-bits must be in [{QSGDCodec.MIN_BITS}, "
            f"{QSGDCodec.MAX_BITS}], got {args.quantize_bits}"
        )
    _validate_broadcast_flags(args)


def _validate_broadcast_flags(args) -> None:
    """Reject inconsistent delta-broadcast flag combinations early."""
    if args.broadcast_codec is None:
        if args.broadcast_k is not None:
            raise ConfigurationError(
                "--broadcast-k requires --broadcast-codec (top-k or random-k)"
            )
        if args.broadcast_bits is not None:
            raise ConfigurationError(
                "--broadcast-bits requires --broadcast-codec qsgd"
            )
        return
    codec_class = CODEC_REGISTRY.get(args.broadcast_codec)
    if codec_class is None:
        raise ConfigurationError(
            f"unknown broadcast codec {args.broadcast_codec!r}; "
            f"available: {available_codecs()}"
        )
    sparsifying = bool(getattr(codec_class, "sparsifying", False))
    if args.broadcast_k is not None and not sparsifying:
        raise ConfigurationError(
            f"--broadcast-k only applies to sparsifying broadcast codecs; "
            f"--broadcast-codec is {args.broadcast_codec!r}"
        )
    if sparsifying and args.broadcast_k is None:
        raise ConfigurationError(
            f"--broadcast-codec {args.broadcast_codec} requires --broadcast-k "
            "(coordinates kept per delta broadcast)"
        )
    if args.broadcast_k is not None and args.broadcast_k < 1:
        raise ConfigurationError(f"--broadcast-k must be >= 1, got {args.broadcast_k}")
    if args.broadcast_bits is not None and args.broadcast_codec != "qsgd":
        raise ConfigurationError(
            f"--broadcast-bits only applies to the qsgd broadcast codec; "
            f"--broadcast-codec is {args.broadcast_codec!r}"
        )
    if args.broadcast_bits is not None and not (
        QSGDCodec.MIN_BITS <= args.broadcast_bits <= QSGDCodec.MAX_BITS
    ):
        raise ConfigurationError(
            f"--broadcast-bits must be in [{QSGDCodec.MIN_BITS}, "
            f"{QSGDCodec.MAX_BITS}], got {args.broadcast_bits}"
        )


def run(argv: Optional[Sequence[str]] = None, *, stream=None) -> dict:
    """Parse *argv*, run the session, and return the result summary dictionary."""
    out = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.aggregator == "":
        print("available aggregators: " + ", ".join(available_gars()), file=out)
        return {"listed": "aggregators"}
    if args.experiment == "":
        print("available experiments (models): " + ", ".join(available_models()), file=out)
        return {"listed": "experiments"}
    if args.dataset == "":
        print("available datasets: " + ", ".join(available_datasets()), file=out)
        return {"listed": "datasets"}
    if args.sync_policy == "":
        print("available sync policies: " + ", ".join(available_sync_policies()), file=out)
        return {"listed": "sync-policies"}
    if args.codec == "":
        print("available codecs: " + ", ".join(available_codecs()), file=out)
        return {"listed": "codecs"}
    if args.broadcast_codec == "":
        print("available broadcast codecs: " + ", ".join(available_codecs()), file=out)
        return {"listed": "broadcast-codecs"}
    if args.attack is not None and args.attack not in ATTACK_REGISTRY:
        raise ConfigurationError(
            f"unknown attack {args.attack!r}; available: {sorted(ATTACK_REGISTRY)}"
        )
    _validate_cluster_flags(args)

    sync_kwargs: dict = {}
    if args.sync_policy == "quorum":
        sync_kwargs = {"quorum": args.quorum_size, "stragglers": args.straggler_policy}
    elif args.sync_policy == "bounded-staleness":
        sync_kwargs = {"tau": args.staleness_bound, "quorum": args.quorum_size}
    straggler_model = None
    if args.straggler_model != "none":
        # --straggler-intensity means sigma for lognormal and scale otherwise;
        # each distribution gets its own sensible default.
        defaults = {"lognormal": 0.75, "pareto": 1.0, "constant": 2.0}
        intensity = (
            args.straggler_intensity
            if args.straggler_intensity is not None
            else defaults[args.straggler_model]
        )
        straggler_model = StragglerModel(
            distribution=args.straggler_model,
            prob=args.straggler_prob,
            sigma=intensity if args.straggler_model == "lognormal" else 0.75,
            scale=intensity if args.straggler_model != "lognormal" else 1.0,
        )

    def _run_session() -> tuple:
        """Build and run one full session from the parsed flags."""
        dataset = load_dataset(
            args.dataset, **_parse_kv_args(args.dataset_args), rng=args.seed
        )
        # Each session (including determinism-check replays) gets its own
        # profiler: host timings differ between replays, so they must never
        # leak into the simulated-telemetry summary that gets compared.
        profiler = SimProfiler() if args.profile else None
        trainer = build_trainer(
            model=args.experiment,
            model_kwargs=_parse_kv_args(args.experiment_args),
            dataset=dataset,
            gar=args.aggregator,
            num_workers=args.nb_workers,
            num_byzantine=args.nb_real_byz,
            declared_f=args.nb_decl_byz,
            attack=args.attack,
            corrupted_workers=args.nb_corrupted,
            batch_size=args.batch_size,
            optimizer=args.optimizer,
            learning_rate=args.learning_rate,
            server_cores=args.server_cores,
            distance_cache=args.distance_cache == "on",
            measured_aggregation=args.measured_aggregation,
            mode=args.mode,
            sync_policy=args.sync_policy,
            sync_kwargs=sync_kwargs,
            max_version_lag=args.max_version_lag,
            straggler_model=straggler_model,
            codec=args.codec,
            codec_k=args.codec_k,
            quantize_bits=args.quantize_bits,
            broadcast_codec=args.broadcast_codec,
            broadcast_k=args.broadcast_k,
            broadcast_bits=args.broadcast_bits,
            error_feedback=not args.no_error_feedback,
            link_sharing=args.link_sharing,
            link_profile=args.link_profile,
            server_topology=args.server_topology,
            lossy_links=args.lossy_links,
            lossy_drop_rate=args.drop_rate,
            lossy_policy=args.recovery_policy,
            vectorized=not args.no_vectorized,
            compute_mode=args.compute_mode,
            gar_selection=args.gar_selection,
            profiler=profiler,
            compact_telemetry=args.compact_telemetry,
            seed=args.seed,
        )

        manager = (
            CheckpointManager(args.checkpoint_dir) if args.checkpoint_delta > 0 else None
        )
        config = TrainerConfig(max_steps=args.max_step, eval_every=args.evaluation_delta)

        if profiler is not None:
            profiler.start_run()
        try:
            if manager is None:
                history = trainer.run(config)
            else:
                # Run in checkpoint-sized chunks so snapshots land every checkpoint-delta steps.
                remaining = args.max_step
                history = trainer.history
                while remaining > 0 and not history.diverged:
                    chunk = min(args.checkpoint_delta, remaining)
                    trainer.run(TrainerConfig(max_steps=chunk, eval_every=args.evaluation_delta))
                    manager.save(
                        Checkpoint(step=trainer.server.step, sim_time=trainer.clock.now,
                                   parameters=trainer.server.parameters)
                    )
                    remaining -= chunk
                history = trainer.history
        finally:
            if profiler is not None:
                profiler.stop_run()

        summary = history.to_dict()
        summary["configuration"] = {
            "aggregator": args.aggregator,
            "experiment": args.experiment,
            "dataset": args.dataset,
            "nb_workers": args.nb_workers,
            "nb_real_byz": args.nb_real_byz,
            "attack": args.attack,
            "batch_size": args.batch_size,
            "mode": args.mode,
            "sync_policy": args.sync_policy,
            "max_version_lag": args.max_version_lag,
            "straggler_model": args.straggler_model,
            "codec": args.codec,
            "codec_k": args.codec_k,
            "quantize_bits": args.quantize_bits,
            "broadcast_codec": args.broadcast_codec,
            "broadcast_k": args.broadcast_k,
            "broadcast_bits": args.broadcast_bits,
            "link_sharing": args.link_sharing,
            "link_profile": args.link_profile,
            "server_topology": args.server_topology,
            "server_cores": args.server_cores,
            "distance_cache": args.distance_cache,
            "measured_aggregation": args.measured_aggregation,
            "vectorized": not args.no_vectorized,
            "compute_mode": args.compute_mode,
            "gar_selection": args.gar_selection,
            "compact_telemetry": args.compact_telemetry,
            "seed": args.seed,
        }
        return history, summary, profiler

    history, summary, profiler = _run_session()
    if args.determinism_check:
        # Replay the whole session from scratch and diff the telemetry: every
        # simulated quantity is a pure function of the flags + seed, so any
        # drift is a determinism regression (measured_aggregation, the one
        # mode this cannot hold for, is rejected at flag validation).
        _, replay, _ = _run_session()
        if json.dumps(summary, sort_keys=True) != json.dumps(replay, sort_keys=True):
            raise TrainingError(
                "determinism check failed: two replays of the identical "
                "configuration produced different telemetry summaries"
            )
        summary["determinism_check"] = "ok"

    # Host timings join the summary only after the determinism comparison:
    # they measure the machine, not the simulated cluster.
    if profiler is not None:
        summary["profile"] = profiler.to_dict()
        print(profiler.format_report(), file=out)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    if args.summary_csv:
        write_summary_csv(history, args.summary_csv)

    print(
        f"[repro.runner] {args.aggregator} on {args.experiment}/{args.dataset}: "
        f"final accuracy {history.final_accuracy:.4f} after {history.num_updates} updates "
        f"({history.total_time:.4f} simulated seconds)"
        + (" [DIVERGED]" if history.diverged else ""),
        file=out,
    )
    return summary


def main() -> int:
    """Console entry point."""
    try:
        run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
