"""Shared utilities: validation, deterministic RNG handling, flattening."""

from repro.utils.random import as_rng, component_seed, fresh_rng, spawn_rngs
from repro.utils.validation import (
    check_gradient_matrix,
    check_positive_int,
    check_probability,
    stack_gradients,
)
from repro.utils.flatten import flatten_arrays, unflatten_array

__all__ = [
    "as_rng",
    "component_seed",
    "fresh_rng",
    "spawn_rngs",
    "check_gradient_matrix",
    "check_positive_int",
    "check_probability",
    "stack_gradients",
    "flatten_arrays",
    "unflatten_array",
]
