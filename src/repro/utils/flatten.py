"""Flattening utilities for model parameters and gradients.

The parameter-server protocol exchanges a single flat vector per worker (this
is also what the GAR theory assumes), while the neural-network substrate keeps
a list of named parameter tensors.  These helpers convert between the two
representations without copying more than once.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def flatten_arrays(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, List[Tuple[int, ...]]]:
    """Concatenate *arrays* into one 1-D ``float64`` vector.

    Returns the flat vector and the list of original shapes needed by
    :func:`unflatten_array` to reverse the operation.
    """
    shapes = [tuple(a.shape) for a in arrays]
    if len(arrays) == 0:
        return np.zeros(0, dtype=np.float64), shapes
    flat = np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])
    return flat, shapes


def unflatten_array(flat: np.ndarray, shapes: Sequence[Tuple[int, ...]]) -> List[np.ndarray]:
    """Split a flat vector back into arrays with the given *shapes*.

    The inverse of :func:`flatten_arrays`.  Raises ``ValueError`` when the
    total size implied by *shapes* does not match ``flat.size``.
    """
    flat = np.asarray(flat, dtype=np.float64).ravel()
    sizes = [int(np.prod(shape, dtype=np.int64)) if len(shape) else 1 for shape in shapes]
    total = int(sum(sizes))
    if total != flat.size:
        raise ValueError(
            f"flat vector has {flat.size} elements but shapes require {total}"
        )
    out: List[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(flat[offset : offset + size].reshape(shape))
        offset += size
    return out


def total_size(shapes: Iterable[Tuple[int, ...]]) -> int:
    """Total number of scalar elements across *shapes*."""
    return int(sum(int(np.prod(s, dtype=np.int64)) if len(s) else 1 for s in shapes))


__all__ = ["flatten_arrays", "unflatten_array", "total_size"]
