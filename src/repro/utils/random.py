"""Deterministic random-number-generator plumbing.

Every stochastic component of the library (datasets, workers, channels,
attacks) accepts either a seed, an existing :class:`numpy.random.Generator`,
or ``None``.  Centralising the coercion here keeps experiments reproducible:
an experiment seeded once can deterministically derive independent streams for
each worker and each channel through :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive *count* independent generators from a single seed.

    Independence is provided by :class:`numpy.random.SeedSequence` spawning,
    so each worker / channel in a simulated cluster observes its own stream
    while the whole experiment stays reproducible from one integer.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


#: Fixed namespace for :func:`component_seed` defaults.  The value is
#: arbitrary but frozen: changing it changes every implicit component
#: stream, which is a replay-breaking event.
_COMPONENT_NAMESPACE = 0x51AB


def component_seed(rng: SeedLike, component: str) -> SeedLike:
    """Deterministic default seed policy for library components.

    Components in ``cluster/`` / ``core/`` must never mint fresh-entropy
    generators implicitly (simlint rule SIM201): a caller who omits ``rng``
    gets a *deterministic* stream derived from the component's name instead
    of OS entropy.  An explicitly provided seed/generator passes through
    unchanged, so the builder's named-stream tree is unaffected.

    Fresh entropy remains available — but only through the explicit
    :func:`fresh_rng`, i.e. from deliberate user intent at the runner/CLI
    layer, never as a silent default.
    """
    if rng is None:
        return derive_seed(_COMPONENT_NAMESPACE, component)
    return rng


def fresh_rng() -> np.random.Generator:
    """A generator seeded from OS entropy — *explicit* user intent only.

    This is the single sanctioned way to obtain a non-reproducible stream
    (e.g. a runner flag that deliberately randomises a demo).  Library code
    must not call it; simulations derive every stream from the master seed.
    """
    return np.random.default_rng(np.random.SeedSequence())


def derive_seed(seed: SeedLike, *tags: Union[int, str]) -> int:
    """Derive a stable integer sub-seed from *seed* and a sequence of tags.

    Useful when a component needs a scalar seed (rather than a Generator),
    e.g. to label an experiment run.
    """
    material: Sequence[int] = []
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**32 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    elif seed is None:
        base = int(np.random.SeedSequence().generate_state(1)[0])
    else:
        base = int(seed)
    material = [base]
    for tag in tags:
        if isinstance(tag, str):
            material.append(sum(ord(c) * (31**i % 97) for i, c in enumerate(tag)) & 0xFFFFFFFF)
        else:
            material.append(int(tag) & 0xFFFFFFFF)
    return int(np.random.SeedSequence(material).generate_state(1)[0])


__all__ = ["SeedLike", "as_rng", "spawn_rngs", "derive_seed", "component_seed", "fresh_rng"]
