"""Input validation helpers shared across the library.

The gradient aggregation rules accept either a list of 1-D vectors (one per
worker) or a pre-stacked ``(n, d)`` matrix; :func:`stack_gradients` normalises
both forms and enforces shape agreement, which is where most user errors
surface.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import AggregationError, ConfigurationError

GradientInput = Union[np.ndarray, Sequence[np.ndarray]]


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Validate that *value* is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that *value* is an integer ``>= 0`` and return it."""
    return check_positive_int(value, name, minimum=0)


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a float in [0, 1], got {value!r}") from exc
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def stack_gradients(gradients: GradientInput) -> np.ndarray:
    """Normalise worker gradients into a float ``(n, d)`` matrix.

    Accepts a 2-D array (returned as ``float64`` without copy when possible)
    or an iterable of 1-D arrays of identical length.  Raises
    :class:`AggregationError` on empty input or inconsistent shapes.
    """
    if isinstance(gradients, np.ndarray):
        if gradients.ndim != 2:
            raise AggregationError(
                f"expected a (n, d) gradient matrix, got array with shape {gradients.shape}"
            )
        if gradients.shape[0] == 0 or gradients.shape[1] == 0:
            raise AggregationError(f"gradient matrix must be non-empty, got shape {gradients.shape}")
        return np.asarray(gradients, dtype=np.float64)

    vectors = [np.asarray(g, dtype=np.float64).ravel() for g in gradients]
    if len(vectors) == 0:
        raise AggregationError("received an empty list of gradients")
    dim = vectors[0].shape[0]
    if dim == 0:
        raise AggregationError("gradients must have at least one coordinate")
    for i, vec in enumerate(vectors):
        if vec.shape[0] != dim:
            raise AggregationError(
                f"gradient {i} has dimension {vec.shape[0]}, expected {dim} (all workers "
                "must submit gradients for the same model)"
            )
    return np.stack(vectors, axis=0)


def check_gradient_matrix(matrix: np.ndarray, *, minimum_rows: int = 1) -> np.ndarray:
    """Validate a stacked ``(n, d)`` gradient matrix with at least *minimum_rows* rows."""
    matrix = stack_gradients(matrix)
    if matrix.shape[0] < minimum_rows:
        raise AggregationError(
            f"need at least {minimum_rows} gradients, got {matrix.shape[0]}"
        )
    return matrix


def check_same_shape(a: np.ndarray, b: np.ndarray, name: str = "array") -> None:
    """Raise :class:`ConfigurationError` unless *a* and *b* share a shape."""
    if a.shape != b.shape:
        raise ConfigurationError(f"{name} shape mismatch: {a.shape} vs {b.shape}")


__all__ = [
    "GradientInput",
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "stack_gradients",
    "check_gradient_matrix",
    "check_same_shape",
]
