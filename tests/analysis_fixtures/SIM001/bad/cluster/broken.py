def incomplete(:
    return 1
