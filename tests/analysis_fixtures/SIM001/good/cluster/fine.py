def complete() -> int:
    return 1
