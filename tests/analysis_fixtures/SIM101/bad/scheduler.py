import time


def stamp_event():
    return time.time()


def split():
    return time.perf_counter()
