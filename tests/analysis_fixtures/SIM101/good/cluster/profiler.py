import time


def host_split():
    # Allowed: cluster/profiler.py is the sanctioned host-timing module.
    return time.perf_counter()
