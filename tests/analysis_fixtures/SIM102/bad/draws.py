import numpy as np


def draw():
    np.random.seed(0)
    return np.random.randn(3)
