import numpy as np


def draw(rng: np.random.Generator):
    return rng.normal(size=3)
