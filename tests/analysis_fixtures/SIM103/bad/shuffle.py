import random


def pick(items):
    return random.choice(list(items))
