def pick(items, rng):
    items = list(items)
    return items[int(rng.integers(len(items)))]
