import os
import uuid


def session_token():
    return os.urandom(16), uuid.uuid4()
