import uuid


def stable_id(name: str):
    return uuid.uuid5(uuid.NAMESPACE_DNS, name)
