def drain(ids):
    pending = {int(i) for i in ids}
    for worker_id in pending:
        yield worker_id


def snapshot(ids):
    members = {i for i in ids}
    return list(members)
