def drain(pending: set):
    for worker_id in sorted(pending):
        yield worker_id


def snapshot(ids):
    members = {i for i in ids}
    return sorted(members)
