from repro.utils.random import as_rng, spawn_rngs


class Component:
    def __init__(self, rng=None):
        self._rng = as_rng(rng)


def make_streams():
    return spawn_rngs(None, 2)
