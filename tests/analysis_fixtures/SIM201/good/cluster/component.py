from repro.utils.random import as_rng, component_seed


class Component:
    def __init__(self, rng=None):
        self._rng = as_rng(component_seed(rng, "component"))
