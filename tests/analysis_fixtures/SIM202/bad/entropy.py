import numpy as np


def make_generator():
    return np.random.default_rng(0)
