import numpy as np


def as_rng(seed=None):
    # Allowed: utils/random.py is the single sanctioned constructor site.
    return np.random.default_rng(seed)
