import numpy as np


def make_generator():
    return np.random.Generator(np.random.PCG64(7))
