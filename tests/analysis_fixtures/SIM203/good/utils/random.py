import numpy as np


def make_generator():
    # Allowed: utils/random.py owns bit-generator construction.
    return np.random.Generator(np.random.PCG64(7))
