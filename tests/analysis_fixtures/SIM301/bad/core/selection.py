import numpy as np


def top_k(scores, k):
    return np.argpartition(scores, k - 1)[:k]
