import numpy as np


def top_k(scores, k):
    # Stable sort + explicit slice: boundary ties resolve by index.
    return np.argsort(scores, kind="stable")[:k]
