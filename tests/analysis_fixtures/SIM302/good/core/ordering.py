import numpy as np


def ranked(scores):
    return np.argsort(scores, kind="stable")
