class Accumulator:
    def __init__(self):
        self.history = []
        self.count = 0

    def state_dict(self):
        return {"count": self.count}

    def load_state_dict(self, state):
        self.count = state["count"]
