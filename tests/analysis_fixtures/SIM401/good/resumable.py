class Accumulator:
    def __init__(self):
        self.history = []
        self.count = 0

    def state_dict(self):
        return {"count": self.count, "history": list(self.history)}

    def load_state_dict(self, state):
        self.count = state["count"]
        self.history = list(state["history"])
