class SimProfiler:
    SUBSYSTEMS = ("compute", "network")
