def run(profiler):
    with profiler.section("compute"):
        pass
    with profiler.section("network"):
        pass
    profiler.add("gpu", 1.0)
