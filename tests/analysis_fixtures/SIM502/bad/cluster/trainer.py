def run(profiler):
    with profiler.section("compute"):
        pass
