def run(profiler):
    with profiler.section("compute"):
        pass
    profiler.add("network", 1.0)
