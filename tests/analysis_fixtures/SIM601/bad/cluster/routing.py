"""Bad: shard routing that depends on things other than its arguments."""

import time

import numpy as np


def home_shard(worker_id, num_shards, version):
    # Seeded or not, a draw makes placement depend on stream state.
    rng = np.random.default_rng(worker_id)
    return int(rng.integers(num_shards))


def place_shards(num_shards, regions, clock):
    # Simulated time is legal simulator-wide but not in placement.
    offset = int(clock.now()) % len(regions)
    return [regions[(offset + shard) % len(regions)] for shard in range(num_shards)]


def route_push(worker_id, shard_id, version):
    # Host clock and salted hash() both void replay and resume.
    if time.time_ns() % 2:
        return hash((worker_id, version)) % shard_id
    return worker_id % shard_id
