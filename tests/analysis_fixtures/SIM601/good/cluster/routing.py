"""Good: shard routing as a pure function of (worker_id, shard_id, version)."""


def home_shard(worker_id, num_shards):
    return worker_id % num_shards


def shard_bounds(dim, num_shards):
    base, extra = divmod(dim, num_shards)
    bounds, lo = [], 0
    for shard in range(num_shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def place_shards(num_shards, regions):
    return [regions[shard % len(regions)] for shard in range(num_shards)]


def fetch_plan(worker_id, shard_id, version):
    # Routing may combine its three inputs arbitrarily — arithmetic,
    # modulo, table lookups — as long as nothing else leaks in.
    return (worker_id + version) % (shard_id + 1)
