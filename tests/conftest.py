"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import gaussian_blobs


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def honest_gradients(rng) -> np.ndarray:
    """11 honest gradient estimates of a common true gradient (d=20)."""
    true_gradient = np.linspace(-1.0, 1.0, 20)
    return true_gradient[None, :] + 0.1 * rng.standard_normal((11, 20))


@pytest.fixture
def true_gradient() -> np.ndarray:
    """The underlying true gradient matching :func:`honest_gradients`."""
    return np.linspace(-1.0, 1.0, 20)


@pytest.fixture
def tiny_dataset():
    """A small, easily learnable classification dataset."""
    return gaussian_blobs(
        num_train=300, num_test=80, num_classes=3, dim=8, separation=3.0, noise=0.8, rng=0
    )


@pytest.fixture
def tiny_model_kwargs():
    """Model kwargs matching :func:`tiny_dataset` for the 'mlp' factory."""
    return {"input_dim": 8, "hidden": (12,), "num_classes": 3}
