"""Numerical gradient-checking helpers shared by the nn tests."""

from __future__ import annotations

import numpy as np


def numerical_gradient(func, x: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = func(x)
        flat[i] = original - epsilon
        minus = func(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


def check_layer_gradients(layer, input_shape, *, rng=None, atol=1e-5, rtol=1e-4) -> None:
    """Check a layer's backward pass (input and parameter gradients) numerically.

    Uses the scalar objective ``sum(weights * layer(x))`` with fixed random
    weights so every output coordinate contributes.
    """
    generator = rng if rng is not None else np.random.default_rng(0)
    x = generator.standard_normal(input_shape)
    out = layer.forward(x, training=True)
    weights = generator.standard_normal(out.shape)

    def objective_of_input(x_value):
        return float(np.sum(weights * layer.forward(x_value, training=True)))

    # Analytic gradients from one forward/backward pass.
    layer.zero_grad()
    layer.forward(x, training=True)
    grad_input = layer.backward(weights)

    numeric_input = numerical_gradient(objective_of_input, x.copy())
    np.testing.assert_allclose(grad_input, numeric_input, atol=atol, rtol=rtol)

    for param in layer.parameters():
        def objective_of_param(value, _param=param):
            backup = _param.data.copy()
            _param.data[...] = value
            result = float(np.sum(weights * layer.forward(x, training=True)))
            _param.data[...] = backup
            return result

        # Recompute analytic parameter gradient against the original data.
        layer.zero_grad()
        layer.forward(x, training=True)
        layer.backward(weights)
        numeric = numerical_gradient(objective_of_param, param.data.copy())
        np.testing.assert_allclose(param.grad, numeric, atol=atol, rtol=rtol)
