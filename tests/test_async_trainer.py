"""Tests for the event-driven async server actor (AsyncTrainer) and the
versioned model store."""

import numpy as np
import pytest

from repro.cluster import (
    AsyncTrainer,
    CostModel,
    LossyChannel,
    StragglerModel,
    TrainerConfig,
    build_trainer,
)
from repro.cluster.sync import AdmissionPredicate, BoundedStaleness, FullSync, Quorum
from repro.exceptions import ConfigurationError


COMMON = dict(
    model="mlp",
    num_workers=9,
    batch_size=16,
    learning_rate=5e-3,
    seed=0,
)

STRAGGLERS = StragglerModel(distribution="pareto", alpha=1.5, scale=1.0, prob=0.4)


def make_async(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(COMMON)
    kwargs.update(model_kwargs=tiny_model_kwargs, dataset=tiny_dataset)
    kwargs.setdefault("gar", "multi-krum")
    kwargs.setdefault("declared_f", 2)
    kwargs.setdefault("mode", "async")
    kwargs.setdefault("sync_policy", "quorum")
    kwargs.update(overrides)
    return build_trainer(**kwargs)


# -------------------------------------------------------- admission predicate
class TestAdmissionPredicate:
    def test_quorum_policy_admission(self):
        policy = Quorum()
        policy.bind(num_workers=9, f=2)
        predicate = policy.admission()
        assert predicate.quorum == 7
        assert predicate.max_version_lag is None
        assert predicate.admit(10**6)
        assert not predicate.batch_ready(6)
        assert predicate.batch_ready(7)

    def test_bounded_staleness_defaults_to_tau(self):
        policy = BoundedStaleness(tau=2)
        policy.bind(num_workers=9, f=2)
        predicate = policy.admission()
        assert predicate.max_version_lag == 2
        assert predicate.admit(2)
        assert not predicate.admit(3)

    def test_explicit_lag_overrides_tau(self):
        policy = BoundedStaleness(tau=2)
        policy.bind(num_workers=9, f=2)
        assert policy.admission(max_version_lag=5).max_version_lag == 5

    def test_full_sync_has_no_async_form(self):
        policy = FullSync()
        policy.bind(num_workers=9, f=2)
        with pytest.raises(ConfigurationError, match="no event-stream"):
            policy.admission()

    def test_admission_before_bind_rejected(self):
        with pytest.raises(ConfigurationError, match="before bind"):
            Quorum().admission()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AdmissionPredicate(quorum=0)
        with pytest.raises(ConfigurationError):
            AdmissionPredicate(quorum=3, max_version_lag=-1)


# ------------------------------------------------------- versioned model store
class TestVersionedStore:
    def test_version_log_and_parameters_at(self, tiny_dataset, tiny_model_kwargs):
        trainer = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=5, batch_size=16, seed=0,
        )
        v0 = trainer.server.parameters
        trainer.run_step()
        trainer.run_step()
        assert trainer.server.version == 2
        assert trainer.server.retained_versions() == [0, 1, 2]
        np.testing.assert_array_equal(trainer.server.parameters_at(0), v0)
        np.testing.assert_array_equal(
            trainer.server.parameters_at(2), trainer.server.parameters
        )
        with pytest.raises(ConfigurationError, match="not in the store"):
            trainer.server.parameters_at(7)

    def test_update_log_records_batches(self, tiny_dataset, tiny_model_kwargs):
        trainer = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=5, batch_size=16, seed=0,
        )
        trainer.run_step()
        (entry,) = trainer.server.update_log
        assert entry.version == 1
        assert entry.num_gradients == 5
        assert entry.worker_ids == tuple(range(5))

    def test_retention_bound_evicts_oldest(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster import ParameterServer
        from repro.core.average import Average
        from repro.optim.sgd import SGD

        server = ParameterServer(
            np.zeros(4), Average(), SGD(learning_rate=1.0), retain_versions=2
        )
        for _ in range(3):
            server.apply_update(np.ones(4))
        assert server.retained_versions() == [2, 3]
        with pytest.raises(ConfigurationError):
            server.parameters_at(0)

    def test_invalid_retention(self):
        from repro.cluster import ParameterServer
        from repro.core.average import Average
        from repro.optim.sgd import SGD

        with pytest.raises(ConfigurationError):
            ParameterServer(np.zeros(4), Average(), SGD(), retain_versions=0)

    def test_builder_bounds_retention_by_default(self, tiny_dataset, tiny_model_kwargs):
        trainer = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=5, batch_size=16, seed=0,
        )
        assert trainer.server.retain_versions == 64


# --------------------------------------------------------------- async engine
class TestAsyncEngine:
    def test_builder_returns_async_trainer(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_async(tiny_dataset, tiny_model_kwargs)
        assert isinstance(trainer, AsyncTrainer)
        assert trainer.admission.quorum == 7

    def test_full_sync_mode_async_rejected(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="incompatible"):
            make_async(tiny_dataset, tiny_model_kwargs, sync_policy="full-sync")

    def test_invalid_mode_rejected(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="mode"):
            make_async(tiny_dataset, tiny_model_kwargs, mode="turbo")

    def test_async_trains_and_converges(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_async(tiny_dataset, tiny_model_kwargs, straggler_model=STRAGGLERS)
        history = trainer.run(TrainerConfig(max_steps=40, eval_every=10))
        assert not history.diverged
        assert history.num_updates == 40
        assert history.final_accuracy > 0.8

    def test_async_is_deterministic(self, tiny_dataset, tiny_model_kwargs):
        runs = []
        for _ in range(2):
            trainer = make_async(
                tiny_dataset, tiny_model_kwargs, straggler_model=STRAGGLERS,
                max_version_lag=3,
            )
            history = trainer.run(TrainerConfig(max_steps=20, eval_every=0))
            runs.append((trainer, history))
        (a, ha), (b, hb) = runs
        np.testing.assert_array_equal(a.server.parameters, b.server.parameters)
        assert [r.sim_time for r in ha.steps] == [r.sim_time for r in hb.steps]
        assert ha.version_lag_histogram() == hb.version_lag_histogram()
        assert ha.worker_round_counts() == hb.worker_round_counts()

    def test_staleness_emerges_and_respects_lag_bound(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = make_async(
            tiny_dataset, tiny_model_kwargs, straggler_model=STRAGGLERS,
            max_version_lag=2,
        )
        history = trainer.run(TrainerConfig(max_steps=30, eval_every=0))
        lags = history.version_lag_histogram()
        assert max(lags) <= 2
        # Overlapping rounds make staleness >= 1 emerge organically.
        assert any(lag >= 1 for lag in lags)
        assert history.sync_summary()["max_staleness"] <= 2

    def test_async_overlaps_rounds_faster_than_full_sync(
        self, tiny_dataset, tiny_model_kwargs
    ):
        sync = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="multi-krum", declared_f=2, straggler_model=STRAGGLERS, **{
                k: v for k, v in COMMON.items() if k != "model"
            },
        )
        h_sync = sync.run(TrainerConfig(max_steps=15, eval_every=0))
        asynchronous = make_async(
            tiny_dataset, tiny_model_kwargs, straggler_model=STRAGGLERS,
        )
        h_async = asynchronous.run(TrainerConfig(max_steps=15, eval_every=0))
        assert h_async.total_time < h_sync.total_time

    def test_server_busy_idle_accounting(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_async(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        utilisation = history.server_utilisation()
        assert utilisation["busy_time"] > 0
        assert utilisation["busy_fraction"] + utilisation["idle_fraction"] == pytest.approx(1.0)
        assert utilisation["busy_time"] + utilisation["idle_time"] == pytest.approx(
            history.total_time
        )

    def test_per_worker_timelines(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_async(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        rounds = history.worker_round_counts()
        assert set(rounds) == set(range(9))
        # Every worker keeps cycling: roughly one push per update, give or
        # take the round in flight when the run stops.
        assert all(count >= 8 for count in rounds.values())
        timeline = history.worker_timelines[0]
        assert timeline.admitted > 0
        assert timeline.compute_seconds > 0
        assert timeline.transfer_seconds > 0

    def test_async_with_byzantine_workers_still_resists(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = make_async(
            tiny_dataset, tiny_model_kwargs, num_byzantine=2,
            attack="reversed-gradient",
        )
        history = trainer.run(TrainerConfig(max_steps=30, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.8
        # The adversary fires at every version: its submissions are counted.
        byz_rounds = history.worker_round_counts()
        assert byz_rounds[0] > 0 and byz_rounds[1] > 0

    def test_fully_lossy_transport_livelocks_into_divergence(
        self, tiny_dataset, tiny_model_kwargs
    ):
        channels = {
            worker_id: LossyChannel(drop_rate=1.0, policy="drop-gradient", rng=worker_id)
            for worker_id in range(COMMON["num_workers"])
        }
        trainer = make_async(
            tiny_dataset, tiny_model_kwargs, uplink_channels=channels,
        )
        trainer.max_events_per_update = 2000
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        assert history.diverged
        assert "livelock" in history.divergence_reason

    def test_step_records_have_async_semantics(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_async(tiny_dataset, tiny_model_kwargs, straggler_model=STRAGGLERS)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        for record in history.steps:
            assert record.gradients_received >= trainer.admission.quorum
            assert record.aggregation_time > 0
            assert record.update_time > 0
        # Simulated time is strictly increasing across updates.
        times = [r.sim_time for r in history.steps]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_invalid_async_knobs_rejected(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="max_version_lag"):
            make_async(tiny_dataset, tiny_model_kwargs, max_version_lag=-1)

    def test_reordered_arrival_never_evicts_fresher_gradient(
        self, tiny_dataset, tiny_model_kwargs
    ):
        from repro.cluster import GradientMessage
        from repro.cluster.events import Event

        trainer = make_async(tiny_dataset, tiny_model_kwargs)
        dim = trainer.server.dim

        def arrive(step, fill):
            message = GradientMessage(
                worker_id=2, step=step, gradient=np.full(dim, float(fill)), loss=0.0
            )
            event = Event(time=0.0, kind="arrive", worker_id=2,
                          payload=(message, message.gradient))
            trainer._on_arrive(event)

        arrive(step=5, fill=1.0)
        # A jitter-reordered round computed on an older version arrives late:
        # it must be discarded, not replace the fresher buffered gradient.
        arrive(step=4, fill=2.0)
        assert trainer._pending.step_of(2) == 5
        np.testing.assert_array_equal(
            trainer._pending.payload_matrix(), np.full((1, dim), 1.0)
        )
        # A genuinely fresher gradient does supersede.
        arrive(step=6, fill=3.0)
        assert trainer._pending.step_of(2) == 6
        assert trainer.history.timeline_for(2).superseded == 2

    def test_async_trainer_is_not_checkpointable(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster import capture_training_state, restore_training_state

        asynchronous = make_async(tiny_dataset, tiny_model_kwargs)
        with pytest.raises(ConfigurationError, match="AsyncTrainer"):
            capture_training_state(asynchronous)
        synchronous = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="multi-krum", declared_f=2, sync_policy="quorum",
            **{k: v for k, v in COMMON.items() if k != "model"},
        )
        state = capture_training_state(synchronous)
        with pytest.raises(ConfigurationError, match="AsyncTrainer"):
            restore_training_state(asynchronous, state)


# ------------------------------------------------- telemetry export satellite
class TestTelemetryExport:
    def test_telemetry_series_exports_async_fields(self, tiny_dataset, tiny_model_kwargs):
        from repro.experiments.export import results_to_json, telemetry_series

        trainer = make_async(tiny_dataset, tiny_model_kwargs, straggler_model=STRAGGLERS)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        series = telemetry_series(history)
        assert 0.0 < series["server_busy_fraction"] <= 1.0
        assert series["server_busy_fraction"] + series["server_idle_fraction"] == pytest.approx(1.0)
        assert set(series["worker_round_counts"]) == {str(i) for i in range(9)}
        assert all(isinstance(k, str) for k in series["version_lag_histogram"])
        # The whole series must be JSON-serialisable as exported.
        import json

        payload = json.loads(results_to_json(series))
        assert payload["worker_round_counts"]["0"] >= 8

    def test_history_to_dict_includes_engine_fields(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_async(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        payload = history.to_dict()
        assert "server_utilisation" in payload
        assert "version_lag_histogram" in payload
        assert payload["worker_timelines"]["0"]["rounds_completed"] > 0


# --------------------------------------------------- gflops-resolution satellite
class TestWorkerNodeAssignment:
    def test_workers_beyond_assignment_list_rejected(
        self, tiny_dataset, tiny_model_kwargs
    ):
        from repro.cluster import ClusterSpec, NodeSpec

        spec = ClusterSpec(
            nodes=[NodeSpec("server"), NodeSpec("node1"), NodeSpec("node2")],
            server_node="server",
            worker_nodes=["node1", "node2"],  # deployment below has 5 workers
        )
        with pytest.raises(ConfigurationError, match="no node assignment"):
            build_trainer(
                model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
                gar="average", num_workers=5, batch_size=16, seed=0, cluster=spec,
            )

    def test_matching_assignment_list_still_works(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster import ClusterSpec

        spec = ClusterSpec.homogeneous(6)
        trainer = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=5, batch_size=16, seed=0, cluster=spec,
        )
        assert len(trainer._worker_gflops) == 5
