"""Bitwise parity: the async vectorised drain against the per-event loop.

The async engine's vectorised path pops *consecutive same-time same-kind*
runs of fetch/compute/push events and dispatches each run through one
batched handler (batched codec encode/decode, batched link pricing, one
``schedule_many`` re-insertion).  Its contract is the same hard bit
identity the sync path carries: byte-identical final parameters, simulated
clock and telemetry export, and the same number of dispatched events.

``peak_queue_size`` is deliberately *not* asserted: the batched handlers
skip link-reschedule events that the per-event path pushes and then
tombstones before dispatch, so the heap's high-water mark (which counts
tombstones) may differ while the live pop order cannot.

The scenarios sweep every hot-path branch: all four codecs (with and
without error feedback), stragglers, link contention, a WAN topology,
delta broadcasts, lossy links, compact telemetry, a bounded-staleness
admission predicate, and both adversary classes (deterministic sign-flip →
one batched craft per version; RNG-drawing random attack → the per-worker
fallback).
"""

import numpy as np
import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.cost_model import StragglerModel
from repro.cluster.trainer import TrainerConfig
from repro.data.datasets import gaussian_blobs

SCENARIOS = {
    "identity": {},
    "topk_ef": {"codec": "top-k", "codec_k": 8},
    "randomk": {"codec": "random-k", "codec_k": 8, "error_feedback": False},
    "qsgd_ef": {"codec": "qsgd", "quantize_bits": 4},
    "straggler": {"straggler_model": StragglerModel("pareto")},
    "contended": {"link_sharing": "fair"},
    "wan": {"link_profile": "wan:2x10mbit/5ms", "link_sharing": "fair"},
    "broadcast_delta": {"broadcast_codec": "top-k", "broadcast_k": 8},
    "lossy": {"lossy_links": 3, "lossy_drop_rate": 0.3},
    "compact_telemetry": {"compact_telemetry": True},
    "bounded_staleness": {"sync_policy": "bounded-staleness", "max_version_lag": 2},
    "random_attack": {"attack": "random"},
    "no_attack": {"num_byzantine": 0, "declared_f": 2},
}


def _run(vectorized: bool, overrides: dict):
    kwargs = dict(
        model="logistic",
        model_kwargs={"input_dim": 10, "num_classes": 5},
        dataset=gaussian_blobs(num_train=2000, num_classes=5, dim=10, rng=3),
        gar="median",
        mode="async",
        sync_policy="quorum",
        num_workers=8,
        num_byzantine=2,
        attack="sign-flip",
        batch_size=16,
        learning_rate=0.05,
        seed=11,
        vectorized=vectorized,
    )
    kwargs.update(overrides)
    trainer = build_trainer(**kwargs)
    history = trainer.run(TrainerConfig(max_steps=6, eval_every=0))
    return trainer, history


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_async_vectorized_drain_is_bit_identical_to_the_per_event_loop(name):
    overrides = SCENARIOS[name]
    vec_trainer, vec_history = _run(True, overrides)
    loop_trainer, loop_history = _run(False, overrides)
    np.testing.assert_array_equal(
        vec_trainer.server.parameters, loop_trainer.server.parameters
    )
    assert vec_trainer.clock.now == loop_trainer.clock.now
    assert vec_history.to_dict() == loop_history.to_dict()
    # Every popped event is counted once, batched or not.
    assert vec_trainer.events_dispatched == loop_trainer.events_dispatched


def test_async_vectorized_parity_with_selection_gar():
    overrides = {
        "gar": "multi-krum",
        "declared_f": 2,
        "num_workers": 10,
        "codec": "top-k",
        "codec_k": 8,
    }
    vec_trainer, vec_history = _run(True, overrides)
    loop_trainer, loop_history = _run(False, overrides)
    np.testing.assert_array_equal(
        vec_trainer.server.parameters, loop_trainer.server.parameters
    )
    assert [s.selected_workers for s in vec_history.steps] == [
        s.selected_workers for s in loop_history.steps
    ]
    assert [s.selection_scores for s in vec_history.steps] == [
        s.selection_scores for s in loop_history.steps
    ]


def test_async_vectorized_livelock_guard_still_fires():
    # The batched drain must keep run_until's livelock semantics: a fully
    # lossy transport drops every gradient forever.
    from repro.cluster import LossyChannel

    channels = {
        worker_id: LossyChannel(drop_rate=1.0, policy="drop-gradient", rng=worker_id)
        for worker_id in range(8)
    }
    trainer = build_trainer(
        model="logistic",
        model_kwargs={"input_dim": 10, "num_classes": 5},
        dataset=gaussian_blobs(num_train=500, num_classes=5, dim=10, rng=3),
        gar="median",
        mode="async",
        sync_policy="quorum",
        num_workers=8,
        batch_size=16,
        seed=11,
        vectorized=True,
        uplink_channels=channels,
    )
    trainer.max_events_per_update = 500
    history = trainer.run(TrainerConfig(max_steps=2, eval_every=0))
    assert history.diverged
    assert "livelock" in history.divergence_reason
