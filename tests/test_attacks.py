"""Tests for the Byzantine attack implementations."""

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_REGISTRY,
    LittleIsEnoughAttack,
    NonFiniteAttack,
    OmniscientKrumAttack,
    RandomGradientAttack,
    ReversedGradientAttack,
    ScaledNoiseAttack,
    SignFlipAttack,
    ZeroGradientAttack,
    ConstantGradientAttack,
    make_attack,
)
from repro.core import Bulyan, MultiKrum
from repro.exceptions import ConfigurationError


@pytest.fixture
def honest(rng):
    return np.ones(30)[None, :] + 0.05 * rng.standard_normal((10, 30))


class TestRegistry:
    def test_expected_attacks_registered(self):
        assert {
            "random", "scaled-noise", "reversed-gradient", "sign-flip",
            "zero", "constant", "non-finite", "little-is-enough", "omniscient",
        } <= set(ATTACK_REGISTRY)

    def test_make_attack(self):
        attack = make_attack("reversed-gradient", scale=5.0)
        assert isinstance(attack, ReversedGradientAttack)
        with pytest.raises(ConfigurationError):
            make_attack("ddos")


class TestCraftInterface:
    def test_output_shape(self, honest):
        crafted = RandomGradientAttack().craft(np.zeros(30), honest, num_byzantine=3, rng=0)
        assert crafted.shape == (3, 30)

    def test_invalid_num_byzantine(self, honest):
        with pytest.raises(ConfigurationError):
            RandomGradientAttack().craft(np.zeros(30), honest, num_byzantine=0, rng=0)

    def test_dimension_from_parameters_when_no_honest(self):
        crafted = RandomGradientAttack().craft(np.zeros(12), np.zeros((0, 12)), 2, rng=0)
        assert crafted.shape == (2, 12)


class TestSimpleAttacks:
    def test_random_large_scale(self, honest):
        crafted = RandomGradientAttack(scale=100.0).craft(np.zeros(30), honest, 1, rng=0)
        assert np.abs(crafted).mean() > 10

    def test_scaled_noise_tracks_honest_spread(self, honest):
        crafted = ScaledNoiseAttack(multiplier=1.0).craft(np.zeros(30), honest, 1, rng=0)
        assert np.abs(crafted).std() < 10 * np.abs(honest).std() + 1

    def test_reversed_gradient_direction(self, honest):
        crafted = ReversedGradientAttack(scale=10.0).craft(np.zeros(30), honest, 2, rng=0)
        mean = honest.mean(axis=0)
        np.testing.assert_allclose(crafted[0], -10.0 * mean)
        np.testing.assert_allclose(crafted[0], crafted[1])

    def test_sign_flip_magnitude_preserved(self, honest):
        crafted = SignFlipAttack().craft(np.zeros(30), honest, 1, rng=0)
        np.testing.assert_allclose(crafted[0], -honest.mean(axis=0))

    def test_zero_and_constant(self, honest):
        zero = ZeroGradientAttack().craft(np.zeros(30), honest, 2, rng=0)
        np.testing.assert_allclose(zero, 0.0)
        const = ConstantGradientAttack(value=3.0).craft(np.zeros(30), honest, 2, rng=0)
        np.testing.assert_allclose(const, 3.0)

    def test_invalid_scales(self):
        with pytest.raises(ConfigurationError):
            RandomGradientAttack(scale=0.0)
        with pytest.raises(ConfigurationError):
            ReversedGradientAttack(scale=-1.0)


class TestNonFiniteAttack:
    @pytest.mark.parametrize("kind,checker", [
        ("nan", np.isnan),
        ("posinf", np.isposinf),
        ("neginf", np.isneginf),
    ])
    def test_kinds(self, honest, kind, checker):
        crafted = NonFiniteAttack(kind=kind, fraction=0.5).craft(np.zeros(30), honest, 1, rng=0)
        assert checker(crafted).sum() == 15

    def test_mixed_kind(self, honest):
        crafted = NonFiniteAttack(kind="mixed", fraction=1.0).craft(np.zeros(30), honest, 2, rng=0)
        assert (~np.isfinite(crafted)).all()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NonFiniteAttack(kind="zero")
        with pytest.raises(ConfigurationError):
            NonFiniteAttack(fraction=0.0)


class TestLittleIsEnough:
    def test_stays_within_z_std(self, honest):
        crafted = LittleIsEnoughAttack(z=1.0).craft(np.zeros(30), honest, 1, rng=0)
        mean, std = honest.mean(axis=0), honest.std(axis=0)
        assert (np.abs(crafted[0] - mean) <= 1.0 * std + 1e-12).all()

    def test_evades_multikrum_selection(self, rng):
        # The crafted gradient is close enough to be selected by Multi-Krum.
        honest = np.ones(50)[None, :] + 0.5 * rng.standard_normal((9, 50))
        crafted = LittleIsEnoughAttack(z=0.5).craft(np.zeros(50), honest, 2, rng=0)
        matrix = np.vstack([honest, crafted])
        result = MultiKrum(f=2).aggregate_detailed(matrix)
        assert set(result.selected_indices.tolist()) & {9, 10}

    def test_invalid_z(self):
        with pytest.raises(ConfigurationError):
            LittleIsEnoughAttack(z=0.0)


class TestOmniscientAttack:
    def test_crafted_vector_is_selected_by_multikrum(self, rng):
        honest = np.ones(40)[None, :] + 0.3 * rng.standard_normal((9, 40))
        attack = OmniscientKrumAttack(f=2, iterations=15)
        crafted = attack.craft(np.zeros(40), honest, 2, rng=0)
        matrix = np.vstack([honest, crafted])
        result = MultiKrum(f=2).aggregate_detailed(matrix)
        assert set(result.selected_indices.tolist()) & {9, 10}

    def test_crafted_vector_opposes_honest_mean(self, rng):
        honest = np.ones(40)[None, :] + 0.3 * rng.standard_normal((9, 40))
        crafted = OmniscientKrumAttack(f=2).craft(np.zeros(40), honest, 1, rng=0)
        mean = honest.mean(axis=0)
        # The crafted vector moved from the mean towards -mean.
        assert crafted[0] @ mean < mean @ mean

    def test_robust_rules_resist_little_is_enough_better_than_averaging(self):
        """Under the dimension-aware (little-is-enough) attack, the bias of the
        robust rules along the attack direction is much smaller than plain
        averaging's, and Bulyan's output never leaves the per-coordinate range
        spanned by the submitted gradients (strong-resilience bound)."""
        avg_bias, mk_bias = [], []
        for seed in range(6):
            generator = np.random.default_rng(seed)
            honest = np.ones(60)[None, :] + 0.4 * generator.standard_normal((15, 60))
            crafted = LittleIsEnoughAttack(z=1.5).craft(np.zeros(60), honest, 4, rng=seed)
            matrix = np.vstack([honest, crafted])  # n = 19, f = 4
            honest_mean = honest.mean(axis=0)
            direction = crafted[0] - honest_mean
            direction /= np.linalg.norm(direction)
            avg_bias.append(float((matrix.mean(axis=0) - honest_mean) @ direction))
            mk_bias.append(float((MultiKrum(f=4).aggregate(matrix) - honest_mean) @ direction))
            bulyan_out = Bulyan(f=4).aggregate(matrix)
            assert (bulyan_out >= matrix.min(axis=0) - 1e-9).all()
            assert (bulyan_out <= matrix.max(axis=0) + 1e-9).all()
        assert np.mean(mk_bias) < 0.5 * np.mean(avg_bias)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            OmniscientKrumAttack(f=-1)
        with pytest.raises(ConfigurationError):
            OmniscientKrumAttack(f=1, max_lambda=0)
