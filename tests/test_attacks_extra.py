"""Tests for the inner-product-manipulation and mimic attacks."""

import numpy as np
import pytest

from repro.attacks import InnerProductManipulationAttack, MimicAttack, make_attack
from repro.core import Average, MultiKrum
from repro.exceptions import ConfigurationError


@pytest.fixture
def honest(rng):
    return np.ones(25)[None, :] + 0.1 * rng.standard_normal((9, 25))


class TestInnerProductManipulation:
    def test_registered(self):
        assert isinstance(make_attack("inner-product", epsilon=0.3),
                          InnerProductManipulationAttack)

    def test_crafted_opposes_mean(self, honest):
        crafted = InnerProductManipulationAttack(epsilon=0.5).craft(np.zeros(25), honest, 2, rng=0)
        mean = honest.mean(axis=0)
        np.testing.assert_allclose(crafted[0], -0.5 * mean)
        assert crafted[0] @ mean < 0

    def test_small_epsilon_stays_within_honest_scale(self, honest):
        crafted = InnerProductManipulationAttack(epsilon=0.2).craft(np.zeros(25), honest, 1, rng=0)
        assert np.linalg.norm(crafted[0]) < np.linalg.norm(honest, axis=1).max()

    def test_drives_average_inner_product_down(self, honest):
        """Enough IPM workers make the plain average anti-correlated with the
        honest mean while each crafted vector stays small."""
        crafted = InnerProductManipulationAttack(epsilon=3.0).craft(np.zeros(25), honest, 5, rng=0)
        matrix = np.vstack([honest, crafted])
        aggregated = Average().aggregate(matrix)
        assert aggregated @ honest.mean(axis=0) < 0

    def test_multikrum_not_fooled(self, honest):
        crafted = InnerProductManipulationAttack(epsilon=3.0).craft(np.zeros(25), honest, 2, rng=0)
        matrix = np.vstack([honest, crafted])
        aggregated = MultiKrum(f=2).aggregate(matrix)
        assert aggregated @ honest.mean(axis=0) > 0

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            InnerProductManipulationAttack(epsilon=0.0)


class TestMimic:
    def test_copies_target(self, honest):
        crafted = MimicAttack(target_index=3).craft(np.zeros(25), honest, 2, rng=0)
        np.testing.assert_allclose(crafted[0], honest[3])
        np.testing.assert_allclose(crafted[1], honest[3])

    def test_out_of_range_target_clamped(self, honest):
        crafted = MimicAttack(target_index=99).craft(np.zeros(25), honest, 1, rng=0)
        np.testing.assert_allclose(crafted[0], honest[-1])

    def test_no_honest_gradients_gives_zeros(self):
        crafted = MimicAttack().craft(np.zeros(7), np.zeros((0, 7)), 2, rng=0)
        np.testing.assert_allclose(crafted, 0.0)

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            MimicAttack(target_index=-1)

    def test_training_survives_mimic_with_robust_gar(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster import TrainerConfig, build_trainer

        history = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="multi-krum", num_workers=9, num_byzantine=2, declared_f=2,
            attack="mimic", batch_size=16, learning_rate=5e-3, seed=0,
        ).run(TrainerConfig(max_steps=40, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.8
