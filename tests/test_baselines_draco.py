"""Tests for the Draco baseline (repetition coding + majority vote)."""

import numpy as np
import pytest

from repro.baselines import DracoConfig, DracoTrainer, RepetitionCode, majority_vote
from repro.exceptions import ConfigurationError, TrainingError


class TestMajorityVote:
    def test_unanimous(self):
        vectors = np.tile(np.arange(4.0), (3, 1))
        np.testing.assert_allclose(majority_vote(vectors), np.arange(4.0))

    def test_majority_beats_minority(self):
        honest = np.ones((2, 5))
        byzantine = -7.0 * np.ones((1, 5))
        np.testing.assert_allclose(majority_vote(np.vstack([honest, byzantine])), 1.0)

    def test_no_majority_raises(self):
        vectors = np.stack([np.zeros(3), np.ones(3), 2 * np.ones(3)])
        with pytest.raises(TrainingError):
            majority_vote(vectors)

    def test_single_replica(self):
        np.testing.assert_allclose(majority_vote(np.ones((1, 4))), 1.0)


class TestRepetitionCode:
    def test_redundancy_and_groups(self):
        code = RepetitionCode(num_workers=19, f=4)
        assert code.redundancy == 9
        assert code.num_groups == 2

    def test_group_membership(self):
        code = RepetitionCode(num_workers=9, f=1)
        assert code.redundancy == 3
        assert code.num_groups == 3
        assert code.members(0) == [0, 1, 2]
        assert code.group_of(4) == 1
        assert code.group_of(8) == 2

    def test_idle_workers(self):
        code = RepetitionCode(num_workers=10, f=1)
        assert code.num_groups == 3
        assert code.group_of(9) is None

    def test_too_few_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            RepetitionCode(num_workers=4, f=2)

    def test_invalid_queries(self):
        code = RepetitionCode(num_workers=9, f=1)
        with pytest.raises(ConfigurationError):
            code.group_of(99)
        with pytest.raises(ConfigurationError):
            code.members(5)


class TestDracoTrainer:
    def make_trainer(self, dataset, model_kwargs, **overrides):
        config_kwargs = dict(num_workers=9, f=2, batch_size=16, max_steps=30,
                             eval_every=10, learning_rate=5e-3)
        config_kwargs.update(overrides.pop("config_overrides", {}))
        return DracoTrainer(
            model="mlp",
            model_kwargs=model_kwargs,
            dataset=dataset,
            config=DracoConfig(**config_kwargs),
            seed=0,
            **overrides,
        )

    def test_converges_without_byzantine(self, tiny_dataset, tiny_model_kwargs):
        history = self.make_trainer(tiny_dataset, tiny_model_kwargs).run()
        assert history.final_accuracy > 0.8

    def test_converges_with_byzantine_within_tolerance(self, tiny_dataset, tiny_model_kwargs):
        history = self.make_trainer(
            tiny_dataset, tiny_model_kwargs, num_byzantine=2, attack="reversed-gradient"
        ).run()
        assert history.final_accuracy > 0.8

    def test_rejects_more_byzantine_than_f(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError):
            self.make_trainer(tiny_dataset, tiny_model_kwargs, num_byzantine=3)

    def test_redundancy_slows_throughput(self, tiny_dataset, tiny_model_kwargs):
        """Draco computes 2f+1 redundant gradients per step, so its throughput is
        far below a plain synchronous deployment of the same size."""
        from repro.cluster import TrainerConfig, build_trainer

        draco_history = self.make_trainer(tiny_dataset, tiny_model_kwargs).run()
        plain = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=9, batch_size=16, learning_rate=5e-3, seed=0,
        ).run(TrainerConfig(max_steps=30, eval_every=10))
        assert draco_history.throughput() < plain.throughput() / 3

    def test_gradients_received_counts_groups(self, tiny_dataset, tiny_model_kwargs):
        trainer = self.make_trainer(tiny_dataset, tiny_model_kwargs)
        record = trainer.run_step()
        assert record.gradients_received == trainer.code.num_groups

    def test_step_time_scales_with_redundancy(self, tiny_dataset, tiny_model_kwargs):
        f1 = self.make_trainer(tiny_dataset, tiny_model_kwargs, config_overrides={"f": 1})
        f2 = self.make_trainer(tiny_dataset, tiny_model_kwargs, config_overrides={"f": 2})
        t1 = f1.run_step().step_time
        t2 = f2.run_step().step_time
        assert t2 > t1

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DracoConfig(max_steps=0)
        with pytest.raises(ConfigurationError):
            DracoConfig(eval_every=-1)
