"""Delta broadcasts: versioned downlink framing, pinning, fallback, resume."""

import numpy as np
import pytest

from repro.cluster import build_trainer
from repro.cluster.codec import (
    IdentityCodec,
    TopKCodec,
    decode_frame,
    encode_delta,
)
from repro.cluster.trainer import TrainerConfig
from repro.exceptions import ConfigurationError


def _build(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(
        model="mlp",
        model_kwargs=tiny_model_kwargs,
        dataset=tiny_dataset,
        gar="average",
        num_workers=4,
        batch_size=16,
        learning_rate=5e-3,
        seed=123,
    )
    kwargs.update(overrides)
    return build_trainer(**kwargs)


class TestDeltaFraming:
    def test_encode_delta_stamps_versions_and_prices_codec_bytes(self, rng):
        codec = TopKCodec(5)
        delta = rng.standard_normal(40)
        frame = encode_delta(codec, delta, base_version=3, target_version=7)
        assert frame.is_delta
        assert frame.base_version == 3 and frame.target_version == 7
        # The version tags are free: a delta frame costs exactly frame_bytes.
        assert frame.nbytes == codec.frame_bytes(40)

    def test_identity_delta_decodes_exactly(self, rng):
        codec = IdentityCodec()
        assert codec.lossless
        delta = rng.standard_normal(32)
        frame = encode_delta(codec, delta, base_version=0, target_version=1)
        np.testing.assert_array_equal(decode_frame(frame), delta)

    def test_gradient_frames_are_not_deltas(self, rng):
        frame = IdentityCodec().encode(rng.standard_normal(8))
        assert not frame.is_delta


class TestServerVersionPinning:
    def _server(self, tiny_dataset, tiny_model_kwargs, **overrides):
        trainer = _build(tiny_dataset, tiny_model_kwargs, **overrides)
        return trainer

    def test_pinned_version_survives_eviction(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._server(tiny_dataset, tiny_model_kwargs, retain_versions=2)
        server = trainer.server
        server.pin_version(0)
        trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        assert server.has_version(0)  # pinned: exempt from retain_versions=2
        assert server.has_version(server.version)

    def test_released_version_gets_evicted(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._server(tiny_dataset, tiny_model_kwargs, retain_versions=2)
        server = trainer.server
        server.pin_version(0)
        server.release_version(0)
        trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        assert not server.has_version(0)

    def test_pin_counts_are_per_holder(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._server(tiny_dataset, tiny_model_kwargs, retain_versions=1)
        server = trainer.server
        server.pin_version(0)
        server.pin_version(0)
        server.release_version(0)
        trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        assert server.has_version(0)  # one pin still outstanding

    def test_pinning_unretained_version_rejected(self, tiny_dataset, tiny_model_kwargs):
        server = self._server(tiny_dataset, tiny_model_kwargs).server
        with pytest.raises(ConfigurationError, match="pin"):
            server.pin_version(99)

    def test_delta_since_none_when_evicted(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._server(tiny_dataset, tiny_model_kwargs, retain_versions=2)
        server = trainer.server
        trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        assert server.delta_since(0) is None
        latest = server.version
        delta = server.delta_since(latest)
        np.testing.assert_array_equal(delta, np.zeros(server.dim))

    def test_delta_since_reference_is_downlink_error_feedback(
        self, tiny_dataset, tiny_model_kwargs
    ):
        server = self._server(tiny_dataset, tiny_model_kwargs).server
        replica = server.parameters + 0.5  # a drifted worker reconstruction
        delta = server.delta_since(server.version, reference=replica)
        # The delta re-offers the drift, not just the version difference.
        np.testing.assert_allclose(delta, -0.5 * np.ones(server.dim))


class TestIdentityBroadcastParity:
    """--broadcast-codec identity + --link-sharing none is bit-identical to raw."""

    def test_trajectory_time_and_bytes_identical(self, tiny_dataset, tiny_model_kwargs):
        raw = _build(tiny_dataset, tiny_model_kwargs)
        delta = _build(tiny_dataset, tiny_model_kwargs, broadcast_codec="identity")
        h_raw = raw.run(TrainerConfig(max_steps=6, eval_every=3))
        h_delta = delta.run(TrainerConfig(max_steps=6, eval_every=3))
        np.testing.assert_array_equal(raw.server.parameters, delta.server.parameters)
        assert h_raw.total_time == h_delta.total_time
        assert h_raw.final_accuracy == h_delta.final_accuracy
        w_raw, w_delta = h_raw.wire_summary(), h_delta.wire_summary()
        assert w_raw["bytes_received"] == w_delta["bytes_received"]
        assert w_raw["downlink_bytes"] == w_delta["downlink_bytes"]

    def test_identity_parity_holds_under_fair_sharing(
        self, tiny_dataset, tiny_model_kwargs
    ):
        raw = _build(tiny_dataset, tiny_model_kwargs, link_sharing="fair")
        delta = _build(tiny_dataset, tiny_model_kwargs, link_sharing="fair",
                       broadcast_codec="identity")
        h_raw = raw.run(TrainerConfig(max_steps=4, eval_every=0))
        h_delta = delta.run(TrainerConfig(max_steps=4, eval_every=0))
        np.testing.assert_array_equal(raw.server.parameters, delta.server.parameters)
        assert h_raw.total_time == h_delta.total_time

    def test_framing_split_first_fetch_full_then_delta(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs, broadcast_codec="identity")
        history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        model_bytes = trainer.cost_model.gradient_bytes(trainer.server.dim)
        for timeline in history.worker_timelines.values():
            assert timeline.full_fetches == 1
            assert timeline.delta_fetches == 2
            assert timeline.bytes_received_full == model_bytes
            assert timeline.bytes_received == 3 * model_bytes


class TestSparseDeltaBroadcasts:
    def test_topk_delta_shrinks_downlink(self, tiny_dataset, tiny_model_kwargs):
        raw = _build(tiny_dataset, tiny_model_kwargs)
        sparse = _build(tiny_dataset, tiny_model_kwargs,
                        broadcast_codec="top-k", broadcast_k=10)
        h_raw = raw.run(TrainerConfig(max_steps=6, eval_every=0))
        h_sparse = sparse.run(TrainerConfig(max_steps=6, eval_every=0))
        assert (
            h_sparse.wire_summary()["downlink_bytes"]
            < h_raw.wire_summary()["downlink_bytes"] / 2
        )
        # Uplink framing is untouched by the broadcast codec.
        assert h_sparse.wire_summary()["bytes_sent"] == h_raw.wire_summary()["bytes_sent"]
        assert not h_sparse.diverged

    def test_replica_error_stays_one_step(self, tiny_dataset, tiny_model_kwargs):
        # Deltas are encoded against the worker's replica (downlink error
        # feedback), so the reconstruction error never accumulates beyond
        # one codec residual: after any number of rounds the replica matches
        # the true model up to the last frame's truncation.
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         broadcast_codec="top-k", broadcast_k=10)
        trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        scale = float(np.linalg.norm(trainer.server.parameters))
        for session in trainer._downlink.values():
            # In lock-step mode every worker fetched at the start of the
            # last step, one version behind the post-update server.
            assert session.version == trainer.server.version - 1
            held = trainer.server.parameters_at(session.version)
            drift = float(np.linalg.norm(session.replica - held))
            assert drift < 0.5 * scale + 1e-6

    def test_topk_delta_training_converges(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         broadcast_codec="top-k", broadcast_k=20)
        history = trainer.run(TrainerConfig(max_steps=40, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.5

    def test_qsgd_delta_broadcast_is_deterministic(
        self, tiny_dataset, tiny_model_kwargs
    ):
        params = []
        for _ in range(2):
            trainer = _build(tiny_dataset, tiny_model_kwargs,
                             broadcast_codec="qsgd", broadcast_bits=6)
            trainer.run(TrainerConfig(max_steps=4, eval_every=0))
            params.append(trainer.server.parameters)
        np.testing.assert_array_equal(params[0], params[1])


class TestFullStateFallback:
    def test_evicted_base_version_triggers_full_resync(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs, broadcast_codec="identity")
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        worker_id = trainer.honest_workers[0].worker_id
        held = trainer._downlink[worker_id].version
        # Simulate an eviction beyond retain_versions (as after a restore).
        trainer.server.release_version(held)
        del trainer.server._version_log[held]
        parameters, nbytes, is_delta = trainer._encode_broadcast(worker_id)
        assert not is_delta  # full-state resync
        assert nbytes == trainer.cost_model.gradient_bytes(trainer.server.dim)
        np.testing.assert_array_equal(parameters, trainer.server.parameters)
        # The session re-synced and the next fetch is a delta again.
        _, _, is_delta = trainer._encode_broadcast(worker_id)
        assert is_delta

    def test_worker_versions_stay_pinned_during_training(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         broadcast_codec="identity", retain_versions=1)
        history = trainer.run(TrainerConfig(max_steps=6, eval_every=0))
        # retain_versions=1 would evict every base version without pinning;
        # with the downlink pinning them, no fetch after the first ever
        # falls back to full state.
        for timeline in history.worker_timelines.values():
            assert timeline.full_fetches == 1
            assert timeline.delta_fetches == 5


class TestBroadcastCheckpointResume:
    @pytest.mark.parametrize(
        "broadcast_kwargs",
        [
            {"broadcast_codec": "identity"},
            {"broadcast_codec": "top-k", "broadcast_k": 10},
            {"broadcast_codec": "qsgd", "broadcast_bits": 6},
        ],
        ids=["identity", "top-k", "qsgd"],
    )
    def test_resume_is_bit_identical(
        self, tiny_dataset, tiny_model_kwargs, tmp_path, broadcast_kwargs
    ):
        from repro.cluster.checkpoint import (
            capture_training_state,
            load_training_state,
            restore_training_state,
            save_training_state,
        )

        build = lambda: _build(tiny_dataset, tiny_model_kwargs, **broadcast_kwargs)
        uninterrupted = build()
        uninterrupted.run(TrainerConfig(max_steps=6, eval_every=0))

        first = build()
        first.run(TrainerConfig(max_steps=3, eval_every=0))
        path = save_training_state(capture_training_state(first), tmp_path / "state.npz")

        resumed = build()
        restore_training_state(resumed, load_training_state(path))
        resumed.run(TrainerConfig(max_steps=3, eval_every=0))
        np.testing.assert_array_equal(
            resumed.server.parameters, uninterrupted.server.parameters
        )
        # Resume did not force any full-state resync: sessions round-trip.
        timelines = resumed.history.worker_timelines
        assert all(t.full_fetches == 0 for t in timelines.values())


class TestAsyncDeltaBroadcasts:
    def _build_async(self, tiny_dataset, tiny_model_kwargs, **overrides):
        return _build(
            tiny_dataset, tiny_model_kwargs,
            mode="async", sync_policy="quorum", max_version_lag=3,
            **overrides,
        )

    def test_async_delta_fetches_split_and_reconcile(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                    broadcast_codec="top-k", broadcast_k=10)
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        wire = history.wire_summary()
        assert wire["bytes_received_delta"] > 0
        assert wire["bytes_received"] == pytest.approx(
            wire["bytes_received_full"] + wire["bytes_received_delta"]
        )
        assert not history.diverged

    def test_async_delta_run_is_deterministic(self, tiny_dataset, tiny_model_kwargs):
        params = []
        for _ in range(2):
            trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                        broadcast_codec="top-k", broadcast_k=10,
                                        link_sharing="fair")
            trainer.run(TrainerConfig(max_steps=5, eval_every=0))
            params.append(trainer.server.parameters)
        np.testing.assert_array_equal(params[0], params[1])

    def test_async_identity_delta_matches_raw_trajectory(
        self, tiny_dataset, tiny_model_kwargs
    ):
        raw = self._build_async(tiny_dataset, tiny_model_kwargs)
        delta = self._build_async(tiny_dataset, tiny_model_kwargs,
                                  broadcast_codec="identity")
        h_raw = raw.run(TrainerConfig(max_steps=5, eval_every=0))
        h_delta = delta.run(TrainerConfig(max_steps=5, eval_every=0))
        np.testing.assert_array_equal(raw.server.parameters, delta.server.parameters)
        assert h_raw.total_time == h_delta.total_time


class TestBroadcastBuilderValidation:
    def test_broadcast_k_requires_codec(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="broadcast_k"):
            _build(tiny_dataset, tiny_model_kwargs, broadcast_k=5)

    def test_broadcast_k_rejected_for_identity(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="codec_k"):
            _build(tiny_dataset, tiny_model_kwargs,
                   broadcast_codec="identity", broadcast_k=5)

    def test_broadcast_bits_rejected_for_topk(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="quantize_bits"):
            _build(tiny_dataset, tiny_model_kwargs,
                   broadcast_codec="top-k", broadcast_k=5, broadcast_bits=4)

    def test_broadcast_instance_with_kwargs_rejected(
        self, tiny_dataset, tiny_model_kwargs
    ):
        with pytest.raises(ConfigurationError, match="broadcast"):
            _build(tiny_dataset, tiny_model_kwargs,
                   broadcast_codec=TopKCodec(5), broadcast_k=5)

    def test_unknown_broadcast_codec_rejected(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            _build(tiny_dataset, tiny_model_kwargs, broadcast_codec="gzip")
