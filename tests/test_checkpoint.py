"""Tests for checkpointing and summary export."""

import csv
import json

import numpy as np
import pytest

from repro.cluster.checkpoint import (
    Checkpoint,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
    write_history_json,
    write_summary_csv,
)
from repro.cluster.telemetry import EvalRecord, StepRecord, TrainingHistory
from repro.exceptions import ConfigurationError


@pytest.fixture
def history():
    history = TrainingHistory()
    history.record_step(StepRecord(0, 0.1, 1.0, 0.06, 0.03, 0.01, 10))
    history.record_evaluation(EvalRecord(step=1, sim_time=0.1, accuracy=0.5))
    history.record_evaluation(EvalRecord(step=2, sim_time=0.2, accuracy=0.75))
    return history


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        checkpoint = Checkpoint(step=7, sim_time=1.5, parameters=rng.standard_normal(20))
        path = save_checkpoint(checkpoint, tmp_path / "state")
        assert path.suffix == ".npz"
        loaded = load_checkpoint(path)
        assert loaded.step == 7
        assert loaded.sim_time == pytest.approx(1.5)
        np.testing.assert_allclose(loaded.parameters, checkpoint.parameters)

    def test_invalid_checkpoint_values(self):
        with pytest.raises(ConfigurationError):
            Checkpoint(step=-1, sim_time=0.0, parameters=np.ones(3))
        with pytest.raises(ConfigurationError):
            Checkpoint(step=0, sim_time=0.0, parameters=np.ones((2, 2)))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_archive_rejected(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, something_else=np.ones(3))
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)


class TestCheckpointManager:
    def test_keeps_only_latest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, max_to_keep=2)
        for step in (1, 2, 3):
            manager.save(Checkpoint(step=step, sim_time=float(step), parameters=rng.standard_normal(4)))
        assert len(manager.existing()) == 2
        latest = manager.latest()
        assert latest.step == 3

    def test_latest_empty(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_invalid_max_to_keep(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, max_to_keep=0)

    def test_resume_from_checkpoint_restores_training_state(self, tmp_path, tiny_dataset,
                                                            tiny_model_kwargs):
        from repro.cluster import TrainerConfig, build_trainer

        trainer = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=5, batch_size=16, seed=0,
        )
        trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        manager = CheckpointManager(tmp_path)
        manager.save(Checkpoint(step=trainer.server.step, sim_time=trainer.clock.now,
                                parameters=trainer.server.parameters))
        restored = manager.latest()
        assert restored.step == 5
        np.testing.assert_allclose(restored.parameters, trainer.server.parameters)


class TestSummaries:
    def test_summary_csv(self, tmp_path, history):
        path = write_summary_csv(history, tmp_path / "summary.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["step", "sim_time", "accuracy"]
        assert len(rows) == 3
        assert float(rows[2][2]) == pytest.approx(0.75)

    def test_history_json(self, tmp_path, history):
        path = write_history_json(history, tmp_path / "history.json")
        payload = json.loads(path.read_text())
        assert payload["num_updates"] == 1
        assert len(payload["evaluations"]) == 2
