"""Tests for checkpointing and summary export."""

import csv
import json

import numpy as np
import pytest

from repro.cluster.checkpoint import (
    Checkpoint,
    CheckpointManager,
    capture_training_state,
    load_checkpoint,
    load_training_state,
    restore_training_state,
    save_checkpoint,
    save_training_state,
    write_history_json,
    write_summary_csv,
)
from repro.cluster.telemetry import EvalRecord, StepRecord, TrainingHistory
from repro.exceptions import ConfigurationError


@pytest.fixture
def history():
    history = TrainingHistory()
    history.record_step(StepRecord(0, 0.1, 1.0, 0.06, 0.03, 0.01, 10))
    history.record_evaluation(EvalRecord(step=1, sim_time=0.1, accuracy=0.5))
    history.record_evaluation(EvalRecord(step=2, sim_time=0.2, accuracy=0.75))
    return history


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        checkpoint = Checkpoint(step=7, sim_time=1.5, parameters=rng.standard_normal(20))
        path = save_checkpoint(checkpoint, tmp_path / "state")
        assert path.suffix == ".npz"
        loaded = load_checkpoint(path)
        assert loaded.step == 7
        assert loaded.sim_time == pytest.approx(1.5)
        np.testing.assert_allclose(loaded.parameters, checkpoint.parameters)

    def test_invalid_checkpoint_values(self):
        with pytest.raises(ConfigurationError):
            Checkpoint(step=-1, sim_time=0.0, parameters=np.ones(3))
        with pytest.raises(ConfigurationError):
            Checkpoint(step=0, sim_time=0.0, parameters=np.ones((2, 2)))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_archive_rejected(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, something_else=np.ones(3))
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)


class TestCheckpointManager:
    def test_keeps_only_latest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, max_to_keep=2)
        for step in (1, 2, 3):
            manager.save(Checkpoint(step=step, sim_time=float(step), parameters=rng.standard_normal(4)))
        assert len(manager.existing()) == 2
        latest = manager.latest()
        assert latest.step == 3

    def test_latest_empty(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_invalid_max_to_keep(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, max_to_keep=0)

    def test_resume_from_checkpoint_restores_training_state(self, tmp_path, tiny_dataset,
                                                            tiny_model_kwargs):
        from repro.cluster import TrainerConfig, build_trainer

        trainer = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="average", num_workers=5, batch_size=16, seed=0,
        )
        trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        manager = CheckpointManager(tmp_path)
        manager.save(Checkpoint(step=trainer.server.step, sim_time=trainer.clock.now,
                                parameters=trainer.server.parameters))
        restored = manager.latest()
        assert restored.step == 5
        np.testing.assert_allclose(restored.parameters, trainer.server.parameters)


RESUME_POLICIES = {
    "quorum-carry": ("quorum", {"stragglers": "carry"}),
    "bounded-staleness": ("bounded-staleness", {"tau": 2}),
}


class TestTrainingStateResume:
    """Checkpoint/resume round-trips must match an uninterrupted run exactly,
    carried-gradient pool included."""

    @staticmethod
    def _make_trainer(tiny_dataset, tiny_model_kwargs, policy, kwargs):
        from repro.cluster import StragglerModel, build_trainer

        return build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="multi-krum", declared_f=2, num_workers=9, batch_size=16,
            learning_rate=5e-3, seed=0, sync_policy=policy, sync_kwargs=kwargs,
            straggler_model=StragglerModel(
                distribution="pareto", alpha=1.5, scale=1.0, prob=0.4
            ),
        )

    @pytest.mark.parametrize("name", sorted(RESUME_POLICIES))
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, tiny_dataset, tiny_model_kwargs, name
    ):
        from repro.cluster import TrainerConfig

        policy, kwargs = RESUME_POLICIES[name]
        reference = self._make_trainer(tiny_dataset, tiny_model_kwargs, policy, kwargs)
        reference.run(TrainerConfig(max_steps=12, eval_every=0))

        interrupted = self._make_trainer(tiny_dataset, tiny_model_kwargs, policy, kwargs)
        interrupted.run(TrainerConfig(max_steps=6, eval_every=0))
        # The carried-gradient pool must be non-trivial for the round-trip to
        # prove anything.
        assert interrupted.sync_policy._pending or name == "quorum-carry"
        state = capture_training_state(interrupted)
        path = save_training_state(state, tmp_path / f"{name}.npz")
        reloaded = load_training_state(path)

        resumed = self._make_trainer(tiny_dataset, tiny_model_kwargs, policy, kwargs)
        restore_training_state(resumed, reloaded)
        assert resumed.server.step == 6
        assert resumed.clock.now == interrupted.clock.now
        resumed.run(TrainerConfig(max_steps=6, eval_every=0))

        np.testing.assert_array_equal(
            resumed.server.parameters, reference.server.parameters
        )
        assert resumed.clock.now == reference.clock.now
        # The resumed half reproduces the uninterrupted telemetry tail.
        tail = reference.history.steps[6:]
        for expected, actual in zip(tail, resumed.history.steps):
            assert actual.sim_time == expected.sim_time
            assert actual.gradients_received == expected.gradients_received
            assert actual.carried_gradients == expected.carried_gradients

    def test_pending_pool_survives_serialisation(
        self, tmp_path, tiny_dataset, tiny_model_kwargs
    ):
        from repro.cluster import TrainerConfig

        trainer = self._make_trainer(
            tiny_dataset, tiny_model_kwargs, "quorum", {"stragglers": "carry"}
        )
        trainer.run(TrainerConfig(max_steps=8, eval_every=0))
        pending = trainer.sync_policy._pending
        assert pending  # stragglers under a heavy tail leave a carried pool
        state = capture_training_state(trainer)
        reloaded = load_training_state(save_training_state(state, tmp_path / "st"))
        assert len(reloaded.policy_state["pending"]) == len(pending)
        restored = self._make_trainer(
            tiny_dataset, tiny_model_kwargs, "quorum", {"stragglers": "carry"}
        )
        restore_training_state(restored, reloaded)
        for original, roundtripped in zip(pending, restored.sync_policy._pending):
            assert roundtripped.message.worker_id == original.message.worker_id
            assert roundtripped.message.step == original.message.step
            assert roundtripped.arrival_time == original.arrival_time
            assert roundtripped.order == original.order
            np.testing.assert_array_equal(roundtripped.payload, original.payload)

    def test_policy_mismatch_rejected(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._make_trainer(
            tiny_dataset, tiny_model_kwargs, "quorum", {"stragglers": "carry"}
        )
        state = capture_training_state(trainer)
        other = self._make_trainer(
            tiny_dataset, tiny_model_kwargs, "bounded-staleness", {"tau": 2}
        )
        with pytest.raises(ConfigurationError, match="sync policy"):
            restore_training_state(other, state)

    def test_topology_mismatch_rejected(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster import build_trainer

        trainer = self._make_trainer(
            tiny_dataset, tiny_model_kwargs, "quorum", {"stragglers": "carry"}
        )
        state = capture_training_state(trainer)
        smaller = build_trainer(
            model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
            gar="multi-krum", declared_f=2, num_workers=7, batch_size=16,
            learning_rate=5e-3, seed=0, sync_policy="quorum",
            sync_kwargs={"stragglers": "carry"},
        )
        with pytest.raises(ConfigurationError, match="RNG streams"):
            restore_training_state(smaller, state)

    def test_missing_training_state_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_training_state(tmp_path / "nope.npz")

    def test_plain_checkpoint_is_not_a_training_state(self, tmp_path, rng):
        path = save_checkpoint(
            Checkpoint(step=1, sim_time=0.5, parameters=rng.standard_normal(4)),
            tmp_path / "plain",
        )
        with pytest.raises(ConfigurationError, match="training-state"):
            load_training_state(path)


class TestSummaries:
    def test_summary_csv(self, tmp_path, history):
        path = write_summary_csv(history, tmp_path / "summary.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["step", "sim_time", "accuracy"]
        assert len(rows) == 3
        assert float(rows[2][2]) == pytest.approx(0.75)

    def test_history_json(self, tmp_path, history):
        path = write_history_json(history, tmp_path / "history.json")
        payload = json.loads(path.read_text())
        assert payload["num_updates"] == 1
        assert len(payload["evaluations"]) == 2
