"""Tests for the simulated clock, cost model and cluster specification."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, CostModel, NodeSpec, SimulatedClock, allocate_devices
from repro.core import Average, Brute, Bulyan, MultiKrum
from repro.exceptions import ConfigurationError


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().advance(-1.0)

    def test_reset(self):
        clock = SimulatedClock(5.0)
        clock.reset()
        assert clock.now == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock(-1.0)


class TestCostModel:
    def test_gradient_compute_time_scales_with_model_and_batch(self):
        model = CostModel()
        base = model.gradient_compute_time(1000, 10)
        assert model.gradient_compute_time(2000, 10) == pytest.approx(2 * base)
        assert model.gradient_compute_time(1000, 20) == pytest.approx(2 * base)

    def test_transfer_time_includes_latency(self):
        model = CostModel(latency_s=0.01, bandwidth_gbps=1.0)
        assert model.transfer_time(0) == pytest.approx(0.01)
        assert model.transfer_time(1.25e8) == pytest.approx(1.0 + 0.01)  # 1 Gb at 1 Gbps

    def test_gradient_bytes(self):
        assert CostModel().gradient_bytes(1000) == 4000

    def test_round_trip_is_twice_one_way(self):
        model = CostModel()
        assert model.round_trip_time(500) == pytest.approx(
            2 * model.transfer_time(model.gradient_bytes(500))
        )

    def test_aggregation_flops_ordering(self):
        model = CostModel()
        n, d = 11, 10_000
        avg = model.aggregation_flops(Average(), n, d)
        mk = model.aggregation_flops(MultiKrum(f=2), n, d)
        bulyan = model.aggregation_flops(Bulyan(f=2), n, d)
        assert avg < mk < bulyan

    def test_brute_analytic_time_dominates_multi_krum(self, rng):
        # Regression (PR-5): Brute was priced at the Multi-Krum O(n^2 d)
        # bound; the subset enumeration must make it strictly dearer for the
        # same (n, d).
        model = CostModel()
        n, d = 12, 2_000
        matrix = rng.standard_normal((n, d))
        for f in (0, 2, 3):
            assert model.aggregation_flops(Brute(f=f), n, d) > (
                model.aggregation_flops(MultiKrum(f=f), n, d)
            )
            _, brute_seconds = model.aggregation_time_detailed(Brute(f=f), matrix)
            _, mk_seconds = model.aggregation_time_detailed(MultiKrum(f=f), matrix)
            assert brute_seconds > mk_seconds

    def test_aggregation_flops_split_sums_to_total(self):
        model = CostModel()
        n, d = 15, 3_000
        for gar in (Average(), MultiKrum(f=2), Bulyan(f=2), Brute(f=3)):
            distance, parallel, serial = model.aggregation_flops_split(gar, n, d)
            assert distance >= 0 and parallel >= 0 and serial >= 0
            assert distance + parallel + serial == model.aggregation_flops(gar, n, d)
        assert model.aggregation_flops_split(Average(), n, d)[0] == 0.0
        assert model.aggregation_flops_split(Bulyan(f=2), n, d)[2] > 0.0

    def test_server_cores_shard_the_parallel_work(self, rng):
        matrix = rng.standard_normal((11, 2_000))
        gar = Bulyan(f=2)
        _, single = CostModel().aggregation_time_detailed(gar, matrix)
        _, quad = CostModel(server_cores=4).aggregation_time_detailed(gar, matrix)
        assert quad < single
        # More cores also pay a larger combine term: going from 4 to 4096
        # cores on a tiny problem must not tend to zero.
        _, absurd = CostModel(server_cores=4096).aggregation_time_detailed(gar, matrix)
        assert absurd > 0

    def test_single_core_pricing_is_bit_identical_to_legacy(self, rng):
        # The split path divides before summing; the legacy path must stay
        # the single division so existing trajectories replay bit for bit.
        model = CostModel()
        gar = Bulyan(f=2)
        n, d = 11, 1_777
        expected = model.aggregation_flops(gar, n, d) / (model.server_gflops * 1e9)
        _, seconds = model.aggregation_time_detailed(gar, rng.standard_normal((n, d)))
        assert seconds == expected

    def test_server_cores_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(server_cores=0)
        with pytest.raises(ConfigurationError):
            CostModel(server_cores=1.5)
        with pytest.raises(ConfigurationError):
            CostModel(server_cores=True)

    def test_aggregation_time_analytic_mode_returns_result(self, rng):
        model = CostModel()
        gar = MultiKrum(f=1)
        matrix = rng.standard_normal((6, 50))
        result, seconds = model.aggregation_time(gar, matrix)
        np.testing.assert_allclose(result, gar.aggregate(matrix))
        assert seconds > 0

    def test_aggregation_time_measured_mode(self, rng):
        model = CostModel(measured_aggregation=True)
        matrix = rng.standard_normal((6, 50))
        result, seconds = model.aggregation_time(MultiKrum(f=1), matrix)
        assert seconds > 0
        assert result.shape == (50,)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(worker_gflops=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            CostModel().gradient_compute_time(0, 10)
        with pytest.raises(ConfigurationError):
            CostModel().transfer_time(-5)

    def test_update_time_positive(self):
        assert CostModel().update_time(100) > 0


class TestClusterSpec:
    def test_homogeneous_cluster(self):
        spec = ClusterSpec.homogeneous(20)
        assert len(spec.nodes) == 20
        assert spec.node("node3").compute_gflops == 80.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(nodes=[NodeSpec("a"), NodeSpec("a")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(nodes=[])

    def test_unknown_node_lookup(self):
        spec = ClusterSpec.homogeneous(2)
        with pytest.raises(ConfigurationError):
            spec.node("node99")

    def test_invalid_node_spec(self):
        with pytest.raises(ConfigurationError):
            NodeSpec("x", compute_gflops=0)
        with pytest.raises(ConfigurationError):
            NodeSpec("x", network_latency_ms=-1)


class TestAllocateDevices:
    def test_first_fit_paper_deployment(self):
        """20 nodes -> 1 parameter server + 19 workers, one per node."""
        spec = allocate_devices(ClusterSpec.homogeneous(20), 19)
        assert spec.server_node == "node0"
        assert len(spec.worker_nodes) == 19
        assert spec.server_node not in spec.worker_nodes

    def test_workers_wrap_around_when_oversubscribed(self):
        spec = allocate_devices(ClusterSpec.homogeneous(3), 5)
        assert len(spec.worker_nodes) == 5
        assert set(spec.worker_nodes) <= {"node1", "node2"}

    def test_strongest_ps_policy(self):
        nodes = [NodeSpec("weak", compute_gflops=10), NodeSpec("strong", compute_gflops=100)]
        spec = allocate_devices(ClusterSpec(nodes=nodes), 1, policy="strongest-ps")
        assert spec.server_node == "strong"
        assert spec.worker_nodes == ["weak"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_devices(ClusterSpec.homogeneous(2), 1, policy="random")

    def test_single_node_cluster(self):
        spec = allocate_devices(ClusterSpec.homogeneous(1), 2)
        assert spec.server_node == "node0"
        assert spec.worker_nodes == ["node0", "node0"]
