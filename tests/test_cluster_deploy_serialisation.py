"""Tests for cluster-spec JSON (de)serialisation (the deploy-tool file format)."""

import json

import pytest

from repro.cluster import ClusterSpec, NodeSpec, allocate_devices
from repro.exceptions import ConfigurationError


def test_to_dict_roundtrip():
    spec = allocate_devices(ClusterSpec.homogeneous(4), 3)
    rebuilt = ClusterSpec.from_dict(spec.to_dict())
    assert rebuilt.server_node == spec.server_node
    assert rebuilt.worker_nodes == spec.worker_nodes
    assert [n.name for n in rebuilt.nodes] == [n.name for n in spec.nodes]


def test_json_file_roundtrip(tmp_path):
    spec = allocate_devices(ClusterSpec.homogeneous(3), 2)
    path = tmp_path / "cluster.json"
    spec.to_json(path)
    rebuilt = ClusterSpec.from_json(path)
    assert rebuilt.to_dict() == spec.to_dict()


def test_json_string_roundtrip():
    spec = ClusterSpec(nodes=[NodeSpec("a", compute_gflops=10), NodeSpec("b")])
    rebuilt = ClusterSpec.from_json(spec.to_json())
    assert rebuilt.node("a").compute_gflops == 10


def test_heterogeneous_properties_survive():
    nodes = [
        NodeSpec("gpu0", compute_gflops=500.0, has_gpu=True),
        NodeSpec("cpu0", compute_gflops=50.0),
    ]
    rebuilt = ClusterSpec.from_dict(ClusterSpec(nodes=nodes).to_dict())
    assert rebuilt.node("gpu0").has_gpu is True
    assert rebuilt.node("cpu0").compute_gflops == 50.0


def test_unknown_worker_reference_rejected():
    data = ClusterSpec.homogeneous(2).to_dict()
    data["worker_nodes"] = ["node7"]
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_dict(data)


def test_malformed_payloads_rejected():
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_dict({"nodes": [{"bogus": 1}]})
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_json("{not json")
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_dict({})


def test_builder_accepts_deserialised_cluster(tiny_dataset, tiny_model_kwargs, tmp_path):
    from repro.cluster import TrainerConfig, build_trainer

    path = tmp_path / "cluster.json"
    allocate_devices(ClusterSpec.homogeneous(5), 4).to_json(path)
    trainer = build_trainer(
        model="mlp", model_kwargs=tiny_model_kwargs, dataset=tiny_dataset,
        gar="average", num_workers=4, batch_size=16, seed=0,
        cluster=ClusterSpec.from_json(path),
    )
    history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
    assert history.num_updates == 5
