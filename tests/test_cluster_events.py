"""Tests for the discrete-event simulation core (repro.cluster.events)."""

import numpy as np
import pytest

from repro.cluster.clock import SimulatedClock
from repro.cluster.events import Event, EventLoop, EventQueue
from repro.exceptions import ConfigurationError, TrainingError


class TestEvent:
    def test_rejects_negative_and_non_finite_times(self):
        with pytest.raises(ConfigurationError):
            Event(time=-1.0, kind="x")
        with pytest.raises(ConfigurationError):
            Event(time=float("nan"), kind="x")
        with pytest.raises(ConfigurationError):
            Event(time=float("inf"), kind="x")


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(Event(time=t, kind="x"))
        assert [queue.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_equal_times_pop_in_push_order(self):
        queue = EventQueue()
        for index in range(50):
            queue.push(Event(time=1.0, kind="x", payload=index))
        assert [queue.pop().payload for _ in range(50)] == list(range(50))

    def test_push_stamps_monotone_order(self):
        queue = EventQueue()
        first = queue.push(Event(time=5.0, kind="x"))
        second = queue.push(Event(time=0.0, kind="x"))
        assert (first.order, second.order) == (0, 1)
        assert queue.pushed == 2

    def test_pop_empty_raises(self):
        with pytest.raises(TrainingError):
            EventQueue().pop()

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek() is None and queue.peek_time() is None
        assert not queue
        event = queue.push(Event(time=2.5, kind="x"))
        assert queue.peek() is event
        assert queue.peek_time() == 2.5
        assert len(queue) == 1

    def test_drain_is_deterministic(self):
        rng = np.random.default_rng(7)
        times = rng.exponential(1.0, size=40)
        orders = []
        for _ in range(2):
            queue = EventQueue()
            for index, t in enumerate(times):
                queue.push(Event(time=float(t), kind="x", payload=index))
            orders.append([e.payload for e in queue.drain()])
        assert orders[0] == orders[1]


class TestClockAuthority:
    def test_advance_to_is_monotone(self):
        clock = SimulatedClock()
        clock.advance_to(1.5)
        clock.advance_to(1.5)  # no-op jump to the same instant is fine
        assert clock.now == 1.5
        with pytest.raises(ConfigurationError):
            clock.advance_to(1.0)

    def test_loop_advances_clock_to_each_event(self):
        loop = EventLoop()
        seen = []
        loop.on("tick", lambda e: seen.append(loop.clock.now))
        loop.schedule("tick", 0.5)
        loop.schedule("tick", 0.25)
        loop.step()
        loop.step()
        assert seen == [0.25, 0.5]
        assert loop.clock.now == 0.5

    def test_schedule_in_the_past_rejected(self):
        loop = EventLoop()
        loop.on("tick", lambda e: None)
        loop.schedule("tick", 1.0)
        loop.step()
        with pytest.raises(ConfigurationError):
            loop.schedule("tick", 0.5)

    def test_unhandled_kind_rejected(self):
        loop = EventLoop()
        loop.queue.push(Event(time=0.0, kind="mystery"))
        with pytest.raises(ConfigurationError, match="no handler"):
            loop.step()

    def test_duplicate_handler_rejected(self):
        loop = EventLoop()
        loop.on("tick", lambda e: None)
        with pytest.raises(ConfigurationError, match="already has a handler"):
            loop.on("tick", lambda e: 1)


class TestRunUntil:
    def test_runs_until_predicate(self):
        loop = EventLoop()
        counter = {"n": 0}

        def tick(event):
            counter["n"] += 1
            loop.schedule("tick", event.time + 1.0)

        loop.on("tick", tick)
        loop.schedule("tick", 0.0)
        dispatched = loop.run_until(lambda: counter["n"] >= 5)
        assert dispatched == 5
        assert loop.clock.now == 4.0

    def test_drained_queue_raises(self):
        loop = EventLoop()
        loop.on("tick", lambda e: None)
        loop.schedule("tick", 0.0)
        with pytest.raises(TrainingError, match="drained"):
            loop.run_until(lambda: False)

    def test_livelock_guard(self):
        loop = EventLoop()
        loop.on("tick", lambda e: loop.schedule("tick", e.time))
        loop.schedule("tick", 0.0)
        with pytest.raises(TrainingError, match="livelock"):
            loop.run_until(lambda: False, max_events=100)
