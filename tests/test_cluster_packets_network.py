"""Tests for gradient packetization and the simulated transports."""

import numpy as np
import pytest

from repro.cluster import (
    CostModel,
    DelayedChannel,
    LossyChannel,
    Packetizer,
    RecoveryPolicy,
    ReliableChannel,
)
from repro.exceptions import ConfigurationError, NetworkError


class TestPacketizer:
    def test_split_covers_all_coordinates(self, rng):
        gradient = rng.standard_normal(1000)
        packets = Packetizer(256).split(gradient)
        assert len(packets) == 4
        reassembled = np.concatenate([p.payload for p in packets])
        np.testing.assert_array_equal(reassembled, gradient)

    def test_num_packets(self):
        packetizer = Packetizer(256)
        assert packetizer.num_packets(256) == 1
        assert packetizer.num_packets(257) == 2
        assert packetizer.num_packets(1) == 1

    def test_roundtrip_no_loss(self, rng):
        gradient = rng.standard_normal(700)
        for policy in RecoveryPolicy:
            packetizer = Packetizer(256, policy=policy, rng=0)
            packets = packetizer.split(gradient)
            restored = packetizer.reassemble(packets, 700)
            np.testing.assert_array_equal(restored, gradient)

    def test_drop_gradient_policy_returns_none_on_loss(self, rng):
        gradient = rng.standard_normal(700)
        packetizer = Packetizer(256, policy=RecoveryPolicy.DROP_GRADIENT)
        packets = packetizer.split(gradient)[:-1]
        assert packetizer.reassemble(packets, 700) is None

    def test_nan_fill_marks_lost_coordinates(self, rng):
        gradient = rng.standard_normal(700)
        packetizer = Packetizer(256, policy=RecoveryPolicy.NAN_FILL)
        packets = packetizer.split(gradient)
        survivors = [p for p in packets if p.sequence != 1]
        restored = packetizer.reassemble(survivors, 700)
        assert np.isnan(restored[256:512]).all()
        np.testing.assert_array_equal(restored[:256], gradient[:256])
        np.testing.assert_array_equal(restored[512:], gradient[512:])

    def test_nan_fill_tolerates_reordering(self, rng):
        gradient = rng.standard_normal(700)
        packetizer = Packetizer(256, policy=RecoveryPolicy.NAN_FILL)
        packets = list(reversed(packetizer.split(gradient)))
        restored = packetizer.reassemble(packets, 700)
        np.testing.assert_array_equal(restored, gradient)

    def test_random_fill_replaces_lost_coordinates_with_garbage(self, rng):
        gradient = rng.standard_normal(700)
        packetizer = Packetizer(256, policy=RecoveryPolicy.RANDOM_FILL, rng=1)
        packets = packetizer.split(gradient)
        survivors = packets[:-1]
        restored = packetizer.reassemble(survivors, 700)
        assert restored is not None
        assert np.isfinite(restored).all()
        np.testing.assert_array_equal(restored[:512], gradient[:512])
        assert not np.allclose(restored[512:], gradient[512:])

    def test_random_fill_out_of_order_scrambles(self, rng):
        gradient = rng.standard_normal(512)
        packetizer = Packetizer(256, policy=RecoveryPolicy.RANDOM_FILL, rng=1)
        packets = list(reversed(packetizer.split(gradient)))
        restored = packetizer.reassemble(packets, 512, in_order=False)
        # Written back-to-back in arrival order: halves are swapped.
        np.testing.assert_array_equal(restored[:256], gradient[256:])
        np.testing.assert_array_equal(restored[256:], gradient[:256])

    def test_too_many_packets_rejected(self, rng):
        packetizer = Packetizer(256)
        packets = packetizer.split(rng.standard_normal(700))
        with pytest.raises(NetworkError):
            packetizer.reassemble(packets + packets, 700)

    def test_empty_gradient_rejected(self):
        with pytest.raises(NetworkError):
            Packetizer(10).split(np.zeros(0))

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            Packetizer(10, policy="retransmit")


class TestReliableChannel:
    def test_payload_delivered_intact(self, rng):
        payload = rng.standard_normal(500)
        delivered, seconds = ReliableChannel().transfer(payload, CostModel())
        np.testing.assert_array_equal(delivered, payload)
        assert seconds > 0

    def test_loss_free_uses_link_bandwidth(self):
        channel = ReliableChannel(drop_rate=0.0)
        assert channel.effective_bandwidth_gbps(CostModel(bandwidth_gbps=10)) == 10

    def test_packet_loss_slows_transfer_down(self, rng):
        payload = rng.standard_normal(100_000)
        cost_model = CostModel()
        _, clean = ReliableChannel(drop_rate=0.0).transfer(payload, cost_model)
        _, lossy = ReliableChannel(drop_rate=0.10).transfer(payload, cost_model)
        assert lossy > 2 * clean

    def test_higher_loss_is_slower(self, rng):
        payload = rng.standard_normal(50_000)
        cost_model = CostModel()
        _, mild = ReliableChannel(drop_rate=0.01).transfer(payload, cost_model)
        _, severe = ReliableChannel(drop_rate=0.20).transfer(payload, cost_model)
        assert severe > mild

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ReliableChannel(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            ReliableChannel(rtt_s=0.0)


class TestDelayedChannel:
    def test_adds_fixed_delay_on_top_of_inner_transfer(self, rng):
        payload = rng.standard_normal(500)
        cost_model = CostModel()
        _, base = ReliableChannel().transfer(payload, cost_model)
        delivered, slowed = DelayedChannel(delay_s=0.25).transfer(payload, cost_model)
        np.testing.assert_array_equal(delivered, payload)
        assert slowed == pytest.approx(base + 0.25)

    def test_jitter_is_bounded_and_deterministic_per_seed(self, rng):
        payload = rng.standard_normal(100)
        cost_model = CostModel()
        _, base = ReliableChannel().transfer(payload, cost_model)
        times_a = [
            DelayedChannel(jitter_s=0.5, rng=7).transfer(payload, cost_model)[1]
            for _ in range(3)
        ]
        times_b = [
            DelayedChannel(jitter_s=0.5, rng=7).transfer(payload, cost_model)[1]
            for _ in range(3)
        ]
        assert times_a == times_b
        assert all(base <= t <= base + 0.5 for t in times_a)

    def test_wraps_lossy_inner_channel(self, rng):
        inner = LossyChannel(drop_rate=1.0, policy=RecoveryPolicy.DROP_GRADIENT, rng=0)
        delivered, seconds = DelayedChannel(inner, delay_s=0.1).transfer(
            rng.standard_normal(600), CostModel()
        )
        assert delivered is None  # the inner drop semantics survive the wrapper
        assert seconds > 0.1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DelayedChannel(delay_s=-0.1)
        with pytest.raises(ConfigurationError):
            DelayedChannel(jitter_s=-1.0)


class TestLossyChannel:
    def test_no_loss_is_transparent(self, rng):
        payload = rng.standard_normal(600)
        delivered, _ = LossyChannel(drop_rate=0.0, rng=0).transfer(payload, CostModel())
        np.testing.assert_array_equal(delivered, payload)

    def test_transfer_time_unaffected_by_loss(self, rng):
        payload = rng.standard_normal(100_000)
        cost_model = CostModel()
        _, clean = LossyChannel(drop_rate=0.0, rng=0).transfer(payload, cost_model)
        _, lossy = LossyChannel(drop_rate=0.3, rng=0).transfer(payload, cost_model)
        assert lossy == pytest.approx(clean)

    def test_random_fill_corrupts_some_coordinates(self, rng):
        payload = rng.standard_normal(10_000)
        channel = LossyChannel(drop_rate=0.3, policy="random-fill", rng=3)
        delivered, _ = channel.transfer(payload, CostModel())
        assert delivered is not None
        assert not np.allclose(delivered, payload)

    def test_nan_fill_marks_losses(self, rng):
        payload = rng.standard_normal(10_000)
        channel = LossyChannel(drop_rate=0.3, policy="nan-fill", rng=3)
        delivered, _ = channel.transfer(payload, CostModel())
        assert np.isnan(delivered).any()
        finite = np.isfinite(delivered)
        np.testing.assert_array_equal(delivered[finite], payload[finite])

    def test_drop_gradient_policy_can_return_none(self, rng):
        payload = rng.standard_normal(10_000)
        channel = LossyChannel(drop_rate=0.9, policy="drop-gradient", rng=3)
        delivered, _ = channel.transfer(payload, CostModel())
        assert delivered is None

    def test_reordering_with_random_fill(self, rng):
        payload = rng.standard_normal(2048)
        channel = LossyChannel(drop_rate=0.0, reorder_rate=1.0, policy="random-fill", rng=5)
        delivered, _ = channel.transfer(payload, CostModel())
        # All coordinates arrive but possibly at the wrong offsets.
        assert delivered is not None
        assert sorted(delivered.tolist()) == pytest.approx(sorted(payload.tolist()))

    def test_statistical_loss_rate(self, rng):
        payload = rng.standard_normal(256 * 200)  # 200 packets
        channel = LossyChannel(drop_rate=0.25, policy="nan-fill", rng=7)
        delivered, _ = channel.transfer(payload, CostModel())
        lost_fraction = np.isnan(delivered).mean()
        assert 0.15 < lost_fraction < 0.35
