"""Property and parity tests for the pluggable synchrony layer.

The seed-parity oracle below is a frozen copy of the pre-pipeline
``SynchronousTrainer.run_step`` (the seed revision of ``trainer.py``); the
refactored pipeline with the default ``FullSync`` policy must reproduce its
trajectories — losses, parameter vectors, telemetry step records — bit for
bit, attack and lossy-transport scenarios included.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    BoundedStaleness,
    CostModel,
    FullSync,
    Quorum,
    StragglerModel,
    TrainerConfig,
    build_trainer,
    make_sync_policy,
)
from repro.cluster.message import GradientMessage
from repro.cluster.sync import ArrivalEvent, available_sync_policies
from repro.exceptions import ConfigurationError, TrainingError


COMMON = dict(
    model="mlp",
    num_workers=9,
    batch_size=16,
    learning_rate=5e-3,
    seed=0,
)


def make_trainer(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(COMMON)
    kwargs.update(model_kwargs=tiny_model_kwargs, dataset=tiny_dataset)
    kwargs.update(overrides)
    return build_trainer(**kwargs)


# ------------------------------------------------------------ seed oracle
def reference_seed_step(trainer):
    """Frozen copy of the seed trainer's lock-step run_step (pre-pipeline)."""
    parameters = trainer.server.parameters
    step = trainer.server.step
    dim = trainer.server.dim

    honest_messages = []
    path_times = []
    downlink_time = trainer.cost_model.transfer_time(trainer.cost_model.gradient_bytes(dim))
    for worker in trainer.honest_workers:
        message = worker.compute_gradient(parameters, step)
        honest_messages.append(message)
        compute_time = trainer.cost_model.gradient_compute_time(
            dim,
            worker.batch_size,
            gflops=trainer._worker_gflops[worker.worker_id],
            flops_per_sample=worker.model.flops_per_sample(),
        )
        path_times.append(downlink_time + compute_time)

    honest_matrix = (
        np.stack([m.gradient for m in honest_messages], axis=0)
        if honest_messages
        else np.zeros((0, dim))
    )

    byzantine_messages = []
    num_byz = len(trainer.byzantine_workers)
    for index, worker in enumerate(trainer.byzantine_workers):
        byzantine_messages.append(
            worker.craft_gradient(
                parameters, honest_matrix, step, num_byzantine=num_byz, index=index
            )
        )

    delivered = []
    for path_index, message in enumerate(honest_messages + byzantine_messages):
        channel = trainer.uplink_channels[message.worker_id]
        payload, seconds = channel.transfer(message.gradient, trainer.cost_model)
        if path_index < len(honest_messages):
            path_times[path_index] += seconds
        if payload is None:
            continue
        delivered.append(
            GradientMessage(
                worker_id=message.worker_id,
                step=message.step,
                gradient=payload,
                loss=message.loss,
            )
        )

    if not delivered:
        raise TrainingError("every gradient was dropped this step; cannot make progress")

    for message in delivered:
        trainer.server.validate_submission(message)
    matrix = np.stack([m.gradient for m in delivered], axis=0)
    aggregated, aggregation_time = trainer.cost_model.aggregation_time(
        trainer.server.gar, matrix
    )
    trainer.server.apply_update(aggregated)
    update_time = trainer.cost_model.update_time(dim)

    compute_comm_time = max(path_times) if path_times else downlink_time
    trainer.clock.advance(compute_comm_time + aggregation_time + update_time)

    losses = [m.loss for m in honest_messages if np.isfinite(m.loss)]
    return {
        "step": step,
        "sim_time": trainer.clock.now,
        "mean_loss": float(np.mean(losses)) if losses else float("nan"),
        "compute_comm_time": compute_comm_time,
        "aggregation_time": aggregation_time,
        "update_time": update_time,
        "gradients_received": len(delivered),
        "parameters": trainer.server.parameters,
    }


SEED_PARITY_SCENARIOS = {
    "clean": dict(gar="average"),
    "robust": dict(gar="multi-krum", declared_f=2),
    "attacked": dict(
        gar="multi-krum", num_byzantine=2, declared_f=2, attack="reversed-gradient"
    ),
    "lossy": dict(
        gar="average", lossy_links=3, lossy_drop_rate=0.3,
        lossy_policy="drop-gradient",
    ),
}


@pytest.mark.parametrize("scenario", sorted(SEED_PARITY_SCENARIOS))
def test_full_sync_reproduces_seed_trajectories_exactly(
    tiny_dataset, tiny_model_kwargs, scenario
):
    overrides = SEED_PARITY_SCENARIOS[scenario]
    pipeline = make_trainer(tiny_dataset, tiny_model_kwargs, **overrides)
    reference = make_trainer(tiny_dataset, tiny_model_kwargs, **overrides)
    assert isinstance(pipeline.sync_policy, FullSync)

    for _ in range(8):
        record = pipeline.run_step()
        expected = reference_seed_step(reference)
        assert record.step == expected["step"]
        assert record.sim_time == expected["sim_time"]
        assert record.compute_comm_time == expected["compute_comm_time"]
        assert record.aggregation_time == expected["aggregation_time"]
        assert record.update_time == expected["update_time"]
        assert record.gradients_received == expected["gradients_received"]
        if np.isnan(expected["mean_loss"]):
            assert np.isnan(record.mean_loss)
        else:
            assert record.mean_loss == expected["mean_loss"]
        # The pipeline's extra telemetry stays at the synchronous defaults.
        assert record.dropped_stragglers == 0
        assert record.carried_gradients == 0
        assert record.stale_gradients == 0
        np.testing.assert_array_equal(
            pipeline.server.parameters, expected["parameters"]
        )


@pytest.mark.parametrize("scenario", ["clean", "attacked", "lossy"])
def test_quorum_n_equals_full_sync(tiny_dataset, tiny_model_kwargs, scenario):
    overrides = SEED_PARITY_SCENARIOS[scenario]
    full = make_trainer(tiny_dataset, tiny_model_kwargs, **overrides)
    quorum = make_trainer(
        tiny_dataset, tiny_model_kwargs,
        sync_policy="quorum", sync_kwargs={"quorum": COMMON["num_workers"]},
        **overrides,
    )
    h_full = full.run(TrainerConfig(max_steps=6, eval_every=3))
    h_quorum = quorum.run(TrainerConfig(max_steps=6, eval_every=3))

    assert len(h_full.steps) == len(h_quorum.steps)
    for a, b in zip(h_full.steps, h_quorum.steps):
        assert a.sim_time == b.sim_time
        assert a.gradients_received == b.gradients_received
        if np.isnan(a.mean_loss):
            assert np.isnan(b.mean_loss)
        else:
            assert a.mean_loss == b.mean_loss
    np.testing.assert_array_equal(full.server.parameters, quorum.server.parameters)


# ------------------------------------------------------- quorum properties
def make_events(arrival_times, *, dropped=(), step=0, dim=3):
    events = []
    for order, arrival in enumerate(arrival_times):
        gradient = np.full(dim, float(order))
        events.append(
            ArrivalEvent(
                message=GradientMessage(
                    worker_id=order, step=step, gradient=gradient, loss=0.0
                ),
                payload=None if order in dropped else gradient,
                arrival_time=float(arrival),
                honest=True,
                order=order,
            )
        )
    return events


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(4, 24),
    f_fraction=st.floats(0.0, 0.45),
    seed=st.integers(0, 2**31),
)
def test_quorum_never_admits_fewer_than_n_minus_f(n, f_fraction, seed):
    f = int(n * f_fraction)
    rng = np.random.default_rng(seed)
    policy = Quorum()
    policy.bind(num_workers=n, f=f)
    assert policy.effective_quorum >= n - f

    for step in range(5):
        events = make_events(rng.exponential(1.0, size=n), step=step)
        decision = policy.collect(events, step, floor=1e-4)
        assert len(decision.admitted) >= n - f
        # Every admitted gradient had arrived by the time the server stopped waiting.
        assert all(e.arrival_time <= decision.wait_time for e in decision.admitted)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(4, 16), seed=st.integers(0, 2**31), q_extra=st.integers(0, 3))
def test_quorum_wait_is_order_statistic_of_arrivals(n, seed, q_extra):
    rng = np.random.default_rng(seed)
    f = rng.integers(0, max(n // 3, 1))
    q = min(n - f + q_extra, n)
    policy = Quorum(quorum=int(q))
    policy.bind(num_workers=n, f=int(f))
    arrivals = rng.exponential(1.0, size=n)
    decision = policy.collect(make_events(arrivals), 0, floor=1e-4)
    assert decision.wait_time == pytest.approx(np.sort(arrivals)[q - 1])
    assert len(decision.admitted) == q
    assert decision.dropped_stragglers == n - q


def test_quorum_below_resilience_floor_rejected():
    policy = Quorum(quorum=5)
    with pytest.raises(ConfigurationError, match="fewer than n - f"):
        policy.bind(num_workers=9, f=2)


def test_quorum_above_cluster_size_rejected():
    policy = Quorum(quorum=10)
    with pytest.raises(ConfigurationError, match="exceeds the cluster size"):
        policy.bind(num_workers=9, f=0)


def test_quorum_requires_bind_before_collect():
    with pytest.raises(ConfigurationError, match="before bind"):
        Quorum().collect(make_events([0.1]), 0, floor=1e-4)


def test_quorum_carry_keeps_one_pending_slot_per_worker():
    policy = Quorum(quorum=2, stragglers="carry")
    policy.bind(num_workers=3, f=1)
    # Worker 2 is late twice in a row; its older gradient must be superseded.
    first = policy.collect(make_events([0.1, 0.2, 5.0], step=0), 0, floor=1e-4)
    assert first.carried == 1 and first.dropped_stragglers == 0
    second = policy.collect(make_events([0.1, 0.2, 5.0], step=1), 1, floor=1e-4)
    assert second.carried == 1
    assert second.dropped_stragglers == 1  # the superseded step-0 gradient
    assert len(policy._pending) == 1
    assert policy._pending[0].message.step == 1


def test_quorum_carried_gradients_keep_residual_lateness():
    policy = Quorum(quorum=2, stragglers="carry")
    policy.bind(num_workers=3, f=1)
    decision = policy.collect(make_events([0.1, 0.2, 5.0], step=0), 0, floor=1e-4)
    assert decision.wait_time == pytest.approx(0.2)
    # The straggler arrived 4.8 s after the cutoff; it is not available at
    # the very start of the next step.
    assert policy._pending[0].arrival_time == pytest.approx(4.8)


def test_quorum_falls_back_to_full_wait_when_quorum_unreachable():
    policy = Quorum(quorum=3)
    policy.bind(num_workers=4, f=1)
    events = make_events([0.1, 0.2, 0.3, 0.4], dropped={1, 2})
    decision = policy.collect(events, 0, floor=1e-4)
    assert len(decision.admitted) == 2
    assert decision.wait_time == pytest.approx(0.4)


# ------------------------------------------- bounded staleness properties
@settings(max_examples=40, deadline=None)
@given(n=st.integers(5, 14), tau=st.integers(0, 3), seed=st.integers(0, 2**31))
def test_bounded_staleness_never_exceeds_tau(n, tau, seed):
    rng = np.random.default_rng(seed)
    f = int(rng.integers(0, max(n // 3, 1)))
    policy = BoundedStaleness(tau=tau)
    policy.bind(num_workers=n, f=f)
    for step in range(12):
        events = make_events(rng.exponential(1.0, size=n) ** 2, step=step)
        decision = policy.collect(events, step, floor=1e-4)
        assert decision.max_staleness <= tau
        assert all(e.staleness <= tau for e in decision.admitted)
        # Nothing pending may already be older than the bound allows.
        assert all(step + 1 - e.message.step <= tau for e in policy._pending)


def test_bounded_staleness_tau_zero_admits_every_delivered_gradient():
    policy = BoundedStaleness(tau=0)
    policy.bind(num_workers=4, f=1)
    arrivals = [0.3, 0.1, 7.0, 0.2]
    decision = policy.collect(make_events(arrivals), 0, floor=1e-4)
    assert len(decision.admitted) == 4
    assert decision.carried == 0
    assert decision.wait_time == pytest.approx(7.0)


def test_bounded_staleness_invalid_parameters():
    with pytest.raises(ConfigurationError):
        BoundedStaleness(tau=-1)
    with pytest.raises(ConfigurationError):
        BoundedStaleness(tau=1, quorum=0)
    policy = BoundedStaleness(tau=1, quorum=2)
    with pytest.raises(ConfigurationError, match="fewer than n - f"):
        policy.bind(num_workers=9, f=2)
    policy = BoundedStaleness(tau=1, quorum=12)
    with pytest.raises(ConfigurationError, match="exceeds the cluster size"):
        policy.bind(num_workers=9, f=2)


# --------------------------------------------------------- registry + misc
def test_registry_lists_all_policies():
    assert {"full-sync", "quorum", "bounded-staleness"}.issubset(
        set(available_sync_policies())
    )


def test_make_sync_policy_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown sync policy"):
        make_sync_policy("does-not-exist")


def test_auto_quorum_rebinds_to_a_different_cluster_size():
    policy = Quorum()
    policy.bind(num_workers=5, f=1)
    assert policy.effective_quorum == 4
    policy.bind(num_workers=10, f=2)  # must re-resolve, not reuse 4
    assert policy.effective_quorum == 8
    assert policy.quorum is None  # the configured value is untouched
    staleness = BoundedStaleness(tau=1)
    staleness.bind(num_workers=5, f=1)
    staleness.bind(num_workers=3, f=0)
    assert staleness.effective_quorum == 3


def test_reset_clears_carried_state():
    policy = Quorum(quorum=2, stragglers="carry")
    policy.bind(num_workers=3, f=1)
    policy.collect(make_events([0.1, 0.2, 5.0]), 0, floor=1e-4)
    assert policy._pending
    policy.reset()
    assert not policy._pending


def test_rebind_clears_carried_state():
    # A reused policy instance must not leak another run's pending gradients
    # into the new trainer's first step.
    policy = Quorum(quorum=2, stragglers="carry")
    policy.bind(num_workers=3, f=1)
    policy.collect(make_events([0.1, 0.2, 5.0]), 0, floor=1e-4)
    assert policy._pending
    policy.bind(num_workers=3, f=1)
    assert not policy._pending


def test_worker_speeds_reject_non_honest_ids(tiny_dataset, tiny_model_kwargs):
    with pytest.raises(ConfigurationError, match="honest worker"):
        make_trainer(tiny_dataset, tiny_model_kwargs, worker_speeds={42: 0.5})
    with pytest.raises(ConfigurationError, match="honest worker"):
        make_trainer(
            tiny_dataset, tiny_model_kwargs, gar="multi-krum",
            num_byzantine=2, declared_f=2, attack="random",
            worker_speeds={0: 0.5},  # id 0 is Byzantine here
        )


# ----------------------------------------------- end-to-end with stragglers
def test_quorum_beats_full_sync_under_stragglers(tiny_dataset, tiny_model_kwargs):
    stragglers = StragglerModel(distribution="pareto", alpha=1.5, scale=1.0, prob=0.4)
    full = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        straggler_model=stragglers,
    )
    quorum = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        sync_policy="quorum", straggler_model=stragglers,
    )
    h_full = full.run(TrainerConfig(max_steps=15, eval_every=0))
    h_quorum = quorum.run(TrainerConfig(max_steps=15, eval_every=0))
    assert h_quorum.mean_step_time() < h_full.mean_step_time()
    assert h_quorum.sync_summary()["dropped_stragglers"] > 0
    assert not h_quorum.diverged


def test_bounded_staleness_training_converges(tiny_dataset, tiny_model_kwargs):
    stragglers = StragglerModel(distribution="lognormal", sigma=1.0, prob=0.5)
    trainer = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        sync_policy="bounded-staleness", sync_kwargs={"tau": 2},
        straggler_model=stragglers,
    )
    history = trainer.run(TrainerConfig(max_steps=40, eval_every=10))
    assert not history.diverged
    assert history.final_accuracy > 0.8
    assert history.sync_summary()["max_staleness"] <= 2


def test_selection_diagnostics_surface_into_telemetry(tiny_dataset, tiny_model_kwargs):
    trainer = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
    )
    record = trainer.run_step()
    assert record.selected_workers is not None
    assert len(record.selected_workers) == 9 - 2 - 2  # m = n - f - 2
    assert record.selection_scores is not None
    assert len(record.selection_scores) == 9
    worker_ids = {w.worker_id for w in trainer.workers}
    assert set(record.selected_workers).issubset(worker_ids)


def test_persistent_slow_worker_is_routed_around_by_quorum(
    tiny_dataset, tiny_model_kwargs
):
    # Worker 8 computes at 1/20th speed: full-sync pays for it every step,
    # quorum admits the other n - f gradients and drops the straggler's.
    # The cost model is compute-bound so the slowdown dominates the path.
    speeds = {8: 0.05}
    compute_bound = CostModel(worker_gflops=0.02, server_gflops=0.05, latency_s=1e-6)
    full = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        worker_speeds=speeds, cost_model=compute_bound,
    )
    quorum = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        worker_speeds=speeds, sync_policy="quorum", cost_model=compute_bound,
    )
    assert full.workers[8].speed == 0.05
    r_full = full.run_step()
    r_quorum = quorum.run_step()
    assert r_quorum.compute_comm_time < r_full.compute_comm_time / 2
    # quorum = n - f = 7 of 9: the slow worker plus the next-slowest miss it.
    assert r_quorum.dropped_stragglers == 2


def test_slow_link_delay_is_routed_around_by_quorum(tiny_dataset, tiny_model_kwargs):
    from repro.cluster import DelayedChannel

    delays = {7: 1.0}
    full = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        link_delays=delays,
    )
    quorum = make_trainer(
        tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2,
        link_delays=delays, sync_policy="quorum",
    )
    assert isinstance(full.uplink_channels[7], DelayedChannel)
    r_full = full.run_step()
    r_quorum = quorum.run_step()
    assert r_full.compute_comm_time > 1.0  # full sync eats the slow link
    assert r_quorum.compute_comm_time < 1.0
    assert r_quorum.dropped_stragglers == 2  # quorum admits 7 of 9


def test_link_delay_rejects_non_honest_ids(tiny_dataset, tiny_model_kwargs):
    with pytest.raises(ConfigurationError, match="honest worker"):
        make_trainer(tiny_dataset, tiny_model_kwargs, link_delays={42: 0.5})
    with pytest.raises(ConfigurationError, match="honest worker"):
        make_trainer(
            tiny_dataset, tiny_model_kwargs, gar="multi-krum",
            num_byzantine=2, declared_f=2, attack="random",
            link_delays={1: 0.5},  # id 1 is Byzantine here; delay would be a no-op
        )


def test_straggler_model_requires_separate_stream_default_off(
    tiny_dataset, tiny_model_kwargs
):
    # Enabling a straggler model must not perturb the worker / channel / attack
    # streams: the loss sequence matches the deterministic run exactly.
    plain = make_trainer(tiny_dataset, tiny_model_kwargs)
    straggled = make_trainer(
        tiny_dataset, tiny_model_kwargs,
        straggler_model=StragglerModel(distribution="constant", scale=3.0),
    )
    r_plain = plain.run_step()
    r_straggled = straggled.run_step()
    assert r_plain.mean_loss == r_straggled.mean_loss
    np.testing.assert_array_equal(plain.server.parameters, straggled.server.parameters)
    # ... but the constant 3x slowdown stretches the step's wall-clock.
    assert r_straggled.compute_comm_time > r_plain.compute_comm_time
