"""Tests for the synchronous trainer and the high-level cluster builder."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    CostModel,
    LossyChannel,
    TrainerConfig,
    allocate_devices,
    build_trainer,
)
from repro.exceptions import ConfigurationError
from repro.nn.models import mlp


COMMON = dict(
    model="mlp",
    num_workers=9,
    batch_size=16,
    learning_rate=5e-3,
    seed=0,
)


def make_trainer(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(COMMON)
    kwargs.update(model_kwargs=tiny_model_kwargs, dataset=tiny_dataset)
    kwargs.update(overrides)
    return build_trainer(**kwargs)


class TestTrainerConfig:
    def test_defaults_valid(self):
        TrainerConfig()

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(max_steps=0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(eval_every=-1)
        with pytest.raises(ConfigurationError):
            TrainerConfig(target_accuracy=1.5)
        with pytest.raises(ConfigurationError):
            TrainerConfig(divergence_threshold=0)


class TestBuilderValidation:
    def test_byzantine_requires_attack(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError):
            make_trainer(tiny_dataset, tiny_model_kwargs, num_byzantine=2)

    def test_too_many_byzantine(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError):
            make_trainer(
                tiny_dataset, tiny_model_kwargs, num_byzantine=9, attack="random"
            )

    def test_invalid_lossy_links(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError):
            make_trainer(tiny_dataset, tiny_model_kwargs, lossy_links=10)

    def test_corrupted_workers_bounded(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError):
            make_trainer(tiny_dataset, tiny_model_kwargs, corrupted_workers=10)

    def test_callable_model_factory(self, tiny_dataset):
        trainer = build_trainer(
            model=lambda: mlp(input_dim=8, hidden=(12,), num_classes=3, rng=0),
            dataset=tiny_dataset,
            gar="average",
            num_workers=5,
            batch_size=8,
            seed=0,
        )
        assert trainer.server.dim == mlp(input_dim=8, hidden=(12,), num_classes=3, rng=0).num_parameters


class TestBuilderAssembly:
    def test_worker_roles(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(
            tiny_dataset, tiny_model_kwargs,
            gar="multi-krum", num_byzantine=2, declared_f=2, attack="random",
        )
        assert len(trainer.workers) == 9
        assert len(trainer.byzantine_workers) == 2
        assert len(trainer.honest_workers) == 7
        # Byzantine ids occupy the first slots.
        assert sorted(w.worker_id for w in trainer.byzantine_workers) == [0, 1]

    def test_lossy_links_assigned_to_last_workers(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(
            tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=3,
            lossy_links=3, lossy_drop_rate=0.2,
        )
        lossy_ids = [wid for wid, ch in trainer.uplink_channels.items() if isinstance(ch, LossyChannel)]
        assert sorted(lossy_ids) == [6, 7, 8]

    def test_explicit_channel_overrides(self, tiny_dataset, tiny_model_kwargs):
        channel = LossyChannel(drop_rate=0.5, rng=0)
        trainer = make_trainer(
            tiny_dataset, tiny_model_kwargs, uplink_channels={0: channel}
        )
        assert trainer.uplink_channels[0] is channel

    def test_cluster_spec_allocation(self, tiny_dataset, tiny_model_kwargs):
        cluster = ClusterSpec.homogeneous(5)
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs, cluster=cluster, num_workers=4)
        assert trainer.cluster.server_node == "node0"
        assert len(trainer.cluster.worker_nodes) == 4


class TestTraining:
    def test_run_step_advances_clock_and_records(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs)
        record = trainer.run_step()
        assert trainer.clock.now > 0
        assert record.gradients_received == 9
        assert record.step == 0
        assert np.isfinite(record.mean_loss)

    def test_parameters_change_each_step(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs)
        before = trainer.server.parameters
        trainer.run_step()
        assert not np.allclose(before, trainer.server.parameters)

    def test_run_produces_history(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=5))
        assert history.num_updates == 10
        assert len(history.evaluations) >= 2
        assert 0.0 <= history.final_accuracy <= 1.0

    def test_training_improves_accuracy(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=50, eval_every=10))
        assert history.final_accuracy > 0.8

    def test_target_accuracy_early_stop(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(
            TrainerConfig(max_steps=200, eval_every=5, target_accuracy=0.8)
        )
        assert history.num_updates < 200

    def test_deterministic_given_seed(self, tiny_dataset, tiny_model_kwargs):
        h1 = make_trainer(tiny_dataset, tiny_model_kwargs).run(TrainerConfig(max_steps=5, eval_every=5))
        h2 = make_trainer(tiny_dataset, tiny_model_kwargs).run(TrainerConfig(max_steps=5, eval_every=5))
        assert h1.final_accuracy == h2.final_accuracy
        assert h1.steps[-1].mean_loss == pytest.approx(h2.steps[-1].mean_loss)

    def test_eval_period_zero_disables_evaluation_during_run(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        # Only the final mandatory evaluation is recorded.
        assert len(history.evaluations) == 1

    def test_byzantine_attack_defeats_averaging(self, tiny_dataset, tiny_model_kwargs):
        attacked = make_trainer(
            tiny_dataset, tiny_model_kwargs, gar="average",
            num_byzantine=2, declared_f=2, attack="reversed-gradient",
        ).run(TrainerConfig(max_steps=40, eval_every=10))
        clean = make_trainer(tiny_dataset, tiny_model_kwargs, gar="average").run(
            TrainerConfig(max_steps=40, eval_every=10)
        )
        assert attacked.final_accuracy < clean.final_accuracy - 0.2 or attacked.diverged

    def test_multikrum_survives_attack(self, tiny_dataset, tiny_model_kwargs):
        history = make_trainer(
            tiny_dataset, tiny_model_kwargs, gar="multi-krum",
            num_byzantine=2, declared_f=2, attack="reversed-gradient",
        ).run(TrainerConfig(max_steps=40, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.8

    def test_nan_attack_marks_averaging_diverged(self, tiny_dataset, tiny_model_kwargs):
        history = make_trainer(
            tiny_dataset, tiny_model_kwargs, gar="average",
            num_byzantine=1, declared_f=1, attack="non-finite",
        ).run(TrainerConfig(max_steps=10, eval_every=5))
        assert history.diverged

    def test_latency_breakdown_recorded(self, tiny_dataset, tiny_model_kwargs):
        trainer = make_trainer(tiny_dataset, tiny_model_kwargs, gar="multi-krum", declared_f=2)
        trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        breakdown = trainer.history.latency_breakdown()
        assert breakdown["aggregation"] > 0
        assert breakdown["compute_comm"] > 0

    def test_colocated_workers_slow_the_step_down(self, tiny_dataset, tiny_model_kwargs):
        # 8 workers on 2 nodes share compute -> longer step than 8 workers on 9 nodes.
        spread = make_trainer(
            tiny_dataset, tiny_model_kwargs, num_workers=8,
            cluster=allocate_devices(ClusterSpec.homogeneous(9), 8),
        )
        packed = make_trainer(
            tiny_dataset, tiny_model_kwargs, num_workers=8,
            cluster=allocate_devices(ClusterSpec.homogeneous(3), 8),
        )
        spread_record = spread.run_step()
        packed_record = packed.run_step()
        assert packed_record.compute_comm_time > spread_record.compute_comm_time
