"""Tests for workers, the parameter server, messages and telemetry."""

import numpy as np
import pytest

from repro.attacks import ReversedGradientAttack
from repro.cluster import (
    ByzantineWorker,
    EvalRecord,
    GradientMessage,
    HonestWorker,
    ModelMessage,
    ParameterServer,
    StepRecord,
    TrainingHistory,
)
from repro.core import Average, MultiKrum
from repro.data import MiniBatchSampler
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.models import mlp
from repro.optim import SGD


@pytest.fixture
def worker_setup(tiny_dataset):
    model = mlp(input_dim=8, hidden=(12,), num_classes=3, rng=0)
    sampler = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 16, rng=0)
    return model, sampler


class TestMessages:
    def test_model_message_validation(self):
        message = ModelMessage(step=0, parameters=np.zeros(10))
        assert message.dim == 10
        with pytest.raises(ConfigurationError):
            ModelMessage(step=-1, parameters=np.zeros(3))
        with pytest.raises(ConfigurationError):
            ModelMessage(step=0, parameters=np.zeros((2, 2)))

    def test_gradient_message_validation(self):
        message = GradientMessage(worker_id=3, step=1, gradient=np.ones(5), loss=0.4)
        assert message.dim == 5
        with pytest.raises(ConfigurationError):
            GradientMessage(worker_id=-1, step=0, gradient=np.ones(3))


class TestHonestWorker:
    def test_compute_gradient_message(self, worker_setup):
        model, sampler = worker_setup
        worker = HonestWorker(0, model, sampler)
        params = model.get_parameters()
        message = worker.compute_gradient(params, step=0)
        assert message.worker_id == 0
        assert message.gradient.shape == params.shape
        assert np.isfinite(message.loss)
        assert not worker.is_byzantine

    def test_uses_broadcast_parameters(self, worker_setup, rng):
        model, sampler = worker_setup
        worker = HonestWorker(0, model, sampler)
        new_params = rng.standard_normal(model.num_parameters)
        worker.compute_gradient(new_params, step=0)
        np.testing.assert_allclose(model.get_parameters(), new_params)

    def test_batch_size_property(self, worker_setup):
        model, sampler = worker_setup
        assert HonestWorker(0, model, sampler).batch_size == 16

    def test_negative_id_rejected(self, worker_setup):
        model, sampler = worker_setup
        with pytest.raises(ConfigurationError):
            HonestWorker(-1, model, sampler)


class TestByzantineWorker:
    def test_crafts_from_attack(self, rng):
        worker = ByzantineWorker(5, ReversedGradientAttack(scale=10.0), rng=0)
        honest = rng.standard_normal((6, 8))
        message = worker.craft_gradient(np.zeros(8), honest, step=2, num_byzantine=1)
        assert worker.is_byzantine
        np.testing.assert_allclose(message.gradient, -10.0 * honest.mean(axis=0))

    def test_rejects_object_without_craft(self):
        with pytest.raises(ConfigurationError):
            ByzantineWorker(1, object())

    def test_index_selects_row(self, rng):
        class TwoRowAttack:
            def craft(self, parameters, honest_gradients, num_byzantine, rng):
                return np.stack([np.zeros(4), np.ones(4)])

        worker = ByzantineWorker(2, TwoRowAttack())
        first = worker.craft_gradient(np.zeros(4), np.zeros((3, 4)), 0, num_byzantine=2, index=0)
        second = worker.craft_gradient(np.zeros(4), np.zeros((3, 4)), 0, num_byzantine=2, index=1)
        np.testing.assert_allclose(first.gradient, 0.0)
        np.testing.assert_allclose(second.gradient, 1.0)


class TestParameterServer:
    def make_server(self, dim=10, gar=None, expected=None):
        return ParameterServer(
            np.zeros(dim),
            gar if gar is not None else Average(),
            SGD(learning_rate=0.1),
            expected_workers=expected,
        )

    def test_aggregate_and_update(self):
        server = self.make_server(dim=4)
        messages = [GradientMessage(i, 0, np.full(4, float(i))) for i in range(3)]
        aggregated = server.aggregate(messages)
        np.testing.assert_allclose(aggregated, 1.0)
        new_params = server.apply_update(aggregated)
        np.testing.assert_allclose(new_params, -0.1)
        assert server.step == 1

    def test_rejects_unknown_worker(self):
        server = self.make_server(dim=4, expected=[0, 1])
        foreign = GradientMessage(worker_id=9, step=0, gradient=np.ones(4))
        with pytest.raises(TrainingError):
            server.validate_submission(foreign)

    def test_rejects_wrong_dimension(self):
        server = self.make_server(dim=4)
        with pytest.raises(TrainingError):
            server.validate_submission(GradientMessage(0, 0, np.ones(5)))

    def test_rejects_empty_round(self):
        with pytest.raises(TrainingError):
            self.make_server().aggregate([])

    def test_rejects_non_finite_update(self):
        server = self.make_server(dim=3)
        with pytest.raises(TrainingError):
            server.apply_update(np.array([1.0, np.nan, 0.0]))

    def test_parameters_are_copies(self):
        server = self.make_server(dim=3)
        view = server.parameters
        view[:] = 99.0
        np.testing.assert_allclose(server.parameters, 0.0)

    def test_robust_gar_integration(self, rng):
        server = ParameterServer(np.zeros(6), MultiKrum(f=1), SGD(learning_rate=1.0))
        honest = [GradientMessage(i, 0, np.ones(6) + 0.01 * rng.standard_normal(6)) for i in range(5)]
        byzantine = [GradientMessage(5, 0, 1e6 * np.ones(6))]
        aggregated = server.aggregate(honest + byzantine)
        assert np.abs(aggregated - 1.0).max() < 0.1

    def test_invalid_initial_parameters(self):
        with pytest.raises(ConfigurationError):
            ParameterServer(np.zeros((2, 2)), Average(), SGD())


class TestTelemetry:
    def make_history(self):
        history = TrainingHistory()
        for step in range(5):
            history.record_step(
                StepRecord(
                    step=step,
                    sim_time=0.1 * (step + 1),
                    mean_loss=1.0 / (step + 1),
                    compute_comm_time=0.06,
                    aggregation_time=0.03,
                    update_time=0.01,
                    gradients_received=10,
                )
            )
            history.record_evaluation(
                EvalRecord(step=step + 1, sim_time=0.1 * (step + 1), accuracy=0.2 * (step + 1))
            )
        return history

    def test_counters(self):
        history = self.make_history()
        assert history.num_updates == 5
        assert history.total_time == pytest.approx(0.5)
        assert history.final_accuracy == pytest.approx(1.0)
        assert history.best_accuracy == pytest.approx(1.0)

    def test_time_and_updates_to_accuracy(self):
        history = self.make_history()
        assert history.time_to_accuracy(0.55) == pytest.approx(0.3)
        assert history.updates_to_accuracy(0.55) == 3
        assert history.time_to_accuracy(2.0) is None

    def test_throughput(self):
        history = self.make_history()
        assert history.throughput() == pytest.approx(50 / 0.5)

    def test_latency_breakdown(self):
        breakdown = self.make_history().latency_breakdown()
        assert breakdown["compute_comm"] == pytest.approx(0.06)
        assert breakdown["aggregation"] == pytest.approx(0.03)
        assert breakdown["total"] == pytest.approx(0.1)

    def test_series_extraction(self):
        times, accs = self.make_history().accuracy_over_time()
        steps, _ = self.make_history().accuracy_over_updates()
        assert times.shape == accs.shape == (5,)
        assert steps[0] == 1

    def test_empty_history(self):
        history = TrainingHistory()
        assert history.num_updates == 0
        assert history.throughput() == 0.0
        assert np.isnan(history.final_accuracy)
        assert history.latency_breakdown()["total"] == 0.0

    def test_divergence_flag(self):
        history = TrainingHistory()
        history.mark_diverged("boom")
        assert history.diverged
        assert "boom" in history.divergence_reason

    def test_to_dict_serialisable(self):
        import json

        payload = json.dumps(self.make_history().to_dict())
        assert "throughput" in payload
