"""Batched codec paths: per-frame bit parity with the sequential encodes.

``encode_batch`` must consume each codec's PRNG exactly as ``n`` sequential
``encode`` calls would and stamp identical frames; ``encode_decode_batch``
additionally returns the decoded matrix in the same pass, whose row ``i``
must be bit-identical to ``decode_frame(frames[i])``.  These contracts are
what lets the vectorised trainer reuse one decoded matrix for both the
EF-SGD residuals and the server-side arrival payloads.
"""

import numpy as np
import pytest

from repro.cluster.codec import (
    IdentityCodec,
    QSGDCodec,
    RandomKCodec,
    TopKCodec,
    decode_frame,
    decode_frames,
)


def _matrix(rng, n=12, dim=40):
    matrix = rng.standard_normal((n, dim))
    matrix[3] *= 1e6          # large-magnitude row
    if n > 5:
        matrix[5] = 0.0       # all-zero row (qsgd zero-norm fast path)
    if n > 7:
        matrix[7, ::2] = 0.0  # sparse-ish row with magnitude ties
    return matrix


def _codecs(seed):
    return [
        IdentityCodec(),
        TopKCodec(k=8),
        TopKCodec(k=100),     # k >= dim: identity degradation
        RandomKCodec(k=8, rng=seed),
        QSGDCodec(bits=4, rng=seed),
    ]


def _assert_frames_equal(batch, sequential):
    assert len(batch) == len(sequential)
    for got, want in zip(batch, sequential):
        assert got.dim == want.dim
        assert got.codec == want.codec
        assert got.nbytes == want.nbytes
        assert got.scale == want.scale
        np.testing.assert_array_equal(got.values, want.values)
        if want.indices is None:
            assert got.indices is None
        else:
            np.testing.assert_array_equal(got.indices, want.indices)


@pytest.mark.parametrize("codec_index", range(5))
def test_encode_batch_matches_sequential_encodes(codec_index):
    matrix = _matrix(np.random.default_rng(0))
    batched_codec = _codecs(seed=42)[codec_index]
    sequential_codec = _codecs(seed=42)[codec_index]
    batch_frames = batched_codec.encode_batch(matrix)
    seq_frames = [sequential_codec.encode(row) for row in matrix]
    _assert_frames_equal(batch_frames, seq_frames)


@pytest.mark.parametrize("codec_index", range(5))
def test_encode_decode_batch_matches_per_frame_decode(codec_index):
    matrix = _matrix(np.random.default_rng(1))
    one_pass_codec = _codecs(seed=7)[codec_index]
    reference_codec = _codecs(seed=7)[codec_index]
    frames, decoded = one_pass_codec.encode_decode_batch(matrix)
    _assert_frames_equal(frames, reference_codec.encode_batch(matrix))
    assert decoded.shape == matrix.shape
    for i, frame in enumerate(frames):
        np.testing.assert_array_equal(decoded[i], decode_frame(frame))
    np.testing.assert_array_equal(decoded, decode_frames(frames))


def test_identity_encode_decode_batch_preserves_bits_and_copies():
    matrix = np.array([[0.0, -0.0, 1.5, np.pi], [1e-300, -1e300, 2.0, 3.0]])
    frames, decoded = IdentityCodec().encode_decode_batch(matrix)
    np.testing.assert_array_equal(decoded, matrix)
    # -0.0 must survive (bit preservation, not just value equality).
    assert np.signbit(decoded[0, 1])
    decoded[0, 0] = 99.0  # the decode is a copy, not a view of the input
    assert matrix[0, 0] == 0.0
    assert all(frame.codec == "identity" for frame in frames)


def test_batched_rng_codecs_stay_in_stream_across_calls():
    # Interleaving batch and scalar encodes must keep the PRNG stream
    # aligned with a purely sequential reference.
    matrix = _matrix(np.random.default_rng(2), n=6)
    for make in (lambda: RandomKCodec(k=8, rng=3), lambda: QSGDCodec(bits=4, rng=3)):
        mixed, reference = make(), make()
        got = list(mixed.encode_batch(matrix[:3])) + [
            mixed.encode(matrix[3])
        ] + mixed.encode_batch(matrix[4:])
        want = [reference.encode(row) for row in matrix]
        _assert_frames_equal(got, want)
