"""Numerical parity of the im2col convolution against the loop convolution.

The two implementations compute the same convolution with different
floating-point summation orders (the loop accumulates over ``kh*kw`` kernel
positions, im2col contracts the whole ``C*kh*kw`` axis at once).  The
documented contract is *statistically equivalent, not bit-identical*:
forward activations, input gradients and parameter gradients agree to
``rtol=1e-10`` (observed differences sit at a few float64 ulps, ~1e-15
relative), which is why ``impl="loop"`` stays the layer default and only
the fleet compute path — already stat-equivalent — flips layers to im2col.

The fleet-kernel half of the file checks the extension that motivated
im2col: per-worker weight gradients for Conv2D / ResidualBlock / pooling
models extracted from one stacked backward pass.
"""

import numpy as np
import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.fleet import FleetComputeKernel, fleet_computable
from repro.cluster.trainer import TrainerConfig
from repro.data.datasets import synthetic_cifar
from repro.exceptions import ConfigurationError
from repro.nn.layers import BatchNorm, Conv2D, Dense, Dropout, Flatten, ReLU
from repro.nn.layers.conv import col2im, im2col
from repro.nn.models import resnet_like, small_cnn

#: The documented parity tolerance between the two conv implementations.
RTOL = 1e-10
ATOL = 1e-12

GEOMETRIES = [
    # (kernel, stride, padding, use_bias) — odd/even kernels, both paddings,
    # strided and dense, with and without bias.
    (3, 1, "same", True),
    (3, 2, "same", True),
    (5, 1, "same", False),
    (5, 2, "valid", True),
    (2, 2, "valid", False),
    ((3, 5), (1, 2), "same", True),
]


def _twin_convs(kernel, stride, padding, use_bias):
    kwargs = dict(stride=stride, padding=padding, use_bias=use_bias, rng=1)
    loop = Conv2D(3, 4, kernel, impl="loop", **kwargs)
    fast = Conv2D(3, 4, kernel, impl="im2col", **kwargs)
    return loop, fast


@pytest.mark.parametrize("kernel,stride,padding,use_bias", GEOMETRIES)
def test_im2col_forward_backward_matches_loop(kernel, stride, padding, use_bias):
    loop, fast = _twin_convs(kernel, stride, padding, use_bias)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 3, 9, 11))
    out_loop = loop(x)
    out_fast = fast(x)
    np.testing.assert_allclose(out_fast, out_loop, rtol=RTOL, atol=ATOL)

    grad = rng.standard_normal(out_loop.shape)
    gin_loop = loop.backward(grad)
    gin_fast = fast.backward(grad)
    np.testing.assert_allclose(gin_fast, gin_loop, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(
        fast.weight.grad, loop.weight.grad, rtol=RTOL, atol=ATOL
    )
    if use_bias:
        np.testing.assert_allclose(
            fast.bias.grad, loop.bias.grad, rtol=RTOL, atol=ATOL
        )


def test_im2col_forward_flops_match_loop():
    loop, fast = _twin_convs(5, 1, "same", True)
    x = np.random.default_rng(0).standard_normal((2, 3, 8, 8))
    loop(x)
    fast(x)
    assert fast.last_forward_flops == loop.last_forward_flops


def test_col2im_is_the_adjoint_of_im2col():
    # <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
    # the input-gradient path relies on.
    rng = np.random.default_rng(2)
    padded = rng.standard_normal((2, 3, 7, 7))
    kh, kw, sh, sw, oh, ow = 3, 3, 2, 2, 3, 3
    cols = im2col(padded, kh, kw, sh, sw, oh, ow)
    y = rng.standard_normal(cols.shape)
    lhs = float(np.vdot(cols, y))
    rhs = float(np.vdot(padded, col2im(y, padded.shape, kh, kw, sh, sw, oh, ow)))
    np.testing.assert_allclose(lhs, rhs, rtol=1e-12)


def test_impl_is_switchable_between_forwards():
    # Each backward consumes the cache its own forward produced, so
    # flipping impl between rounds is safe.
    conv = Conv2D(2, 3, 3, rng=0)
    rng = np.random.default_rng(3)
    x = rng.standard_normal((1, 2, 5, 5))
    out = conv(x)
    conv.backward(np.ones_like(out))
    conv.impl = "im2col"
    out = conv(x)
    conv.backward(np.ones_like(out))  # must not raise


def test_invalid_impl_rejected():
    with pytest.raises(ConfigurationError):
        Conv2D(2, 3, 3, impl="winograd")


# --------------------------------------------------------------------------
# Fleet kernel over convolutional models
# --------------------------------------------------------------------------

def _tiny_resnet():
    return resnet_like(
        image_size=8, stage_channels=(4, 8), blocks_per_stage=1, rng=5
    )


@pytest.mark.parametrize(
    "factory,name", [(_tiny_resnet, "resnet"), (lambda: small_cnn(rng=5), "cnn")]
)
def test_fleet_kernel_matches_per_worker_backprop_on_conv_models(factory, name):
    model = factory()
    assert fleet_computable(model)
    reference = factory()
    kernel = FleetComputeKernel(model)
    rng = np.random.default_rng(0)
    n, batch = 3, 4
    params = model.get_parameters()
    xs = rng.standard_normal((n, batch, 3, 8, 8))
    ys = rng.integers(0, 10, size=(n, batch))
    losses, grads = kernel.compute(params, xs, ys)
    assert grads.shape == (n, params.size)
    for i in range(n):
        reference.set_parameters(params)
        loss, grad = reference.loss_and_gradient(xs[i], ys[i])
        np.testing.assert_allclose(losses[i], loss, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(grads[i], grad, rtol=1e-9, atol=1e-11)


def test_fleet_kernel_flips_all_convolutions_to_im2col():
    model = _tiny_resnet()
    FleetComputeKernel(model)
    convs = list(FleetComputeKernel._convolutions(model))
    assert convs  # stem + residual-block internals (incl. projections)
    assert all(conv.impl == "im2col" for conv in convs)


def test_fleet_computable_rejects_batch_statistics_and_dropout():
    base = [Conv2D(3, 4, 3, rng=0), ReLU(), Flatten(), Dense(4 * 64, 10, rng=1)]
    from repro.nn.model import Sequential

    assert fleet_computable(Sequential(base))
    assert not fleet_computable(
        Sequential([Conv2D(3, 4, 3, rng=0), BatchNorm(4), Flatten(), Dense(4 * 64, 10, rng=1)])
    )
    assert not fleet_computable(
        Sequential([Conv2D(3, 4, 3, rng=0), Dropout(0.5), Flatten(), Dense(4 * 64, 10, rng=1)])
    )
    assert not fleet_computable(Sequential([Flatten()]))  # nothing parameterised


def test_resnet_like_trains_under_fleet_compute_mode():
    trainer = build_trainer(
        model="resnet-like",
        model_kwargs={"image_size": 8, "stage_channels": (4, 8), "blocks_per_stage": 1},
        dataset=synthetic_cifar(num_train=400, image_size=8, rng=3),
        gar="median",
        num_workers=6,
        num_byzantine=1,
        declared_f=1,
        attack="sign-flip",
        batch_size=8,
        learning_rate=0.05,
        seed=11,
        vectorized=True,
        compute_mode="fleet",
    )
    assert trainer._fleet_kernel is not None
    history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
    assert not history.diverged
    assert np.isfinite(trainer.server.parameters).all()
