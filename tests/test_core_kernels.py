"""Parity and regression tests for the shared GAR kernel layer.

The oracles below are frozen copies of the pre-refactor helper code that used
to live inline in ``krum.py`` / ``bulyan.py`` / ``meamed.py``; the kernel
extraction must reproduce them bit-for-bit on random and NaN/Inf-laced
inputs.  The closed-form ``max_byzantine`` is pinned against the documented
O(n) scan fallback for every registered rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GAR_REGISTRY, Brute, Bulyan, MeaMed, MultiKrum, Phocas, kernels
from repro.core.base import GradientAggregationRule
from repro.exceptions import ConfigurationError, ResilienceConditionError


# --------------------------------------------------------------------- oracles
# Frozen pre-refactor implementations (seed revision of krum.py / bulyan.py /
# meamed.py).  Do not "simplify" these to call the kernel module — their whole
# point is being independent.

_HUGE_ORACLE = np.finfo(np.float64).max / 1e6


def oracle_pairwise_squared_distances(matrix):
    finite_rows = np.isfinite(matrix).all(axis=1)
    safe = np.where(np.isfinite(matrix), matrix, 0.0)
    sq_norms = np.einsum("ij,ij->i", safe, safe)
    dist = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (safe @ safe.T)
    np.maximum(dist, 0.0, out=dist)
    if not finite_rows.all():
        bad = ~finite_rows
        dist[bad, :] = np.inf
        dist[:, bad] = np.inf
    np.fill_diagonal(dist, 0.0)
    return dist


def oracle_krum_scores(distances, f):
    n = distances.shape[0]
    n_neighbors = n - f - 2
    off_diag = distances.copy()
    np.fill_diagonal(off_diag, np.inf)
    capped = np.minimum(off_diag, _HUGE_ORACLE)
    part = np.partition(capped, n_neighbors - 1, axis=1)[:, :n_neighbors]
    return part.sum(axis=1)


def oracle_multi_krum(matrix, f, m):
    distances = oracle_pairwise_squared_distances(matrix)
    scores = oracle_krum_scores(distances, f)
    selected = np.argpartition(scores, m - 1)[:m]
    selected = selected[np.argsort(scores[selected], kind="stable")]
    return matrix[selected].mean(axis=0), selected


def oracle_trimmed_mean_around_median(selection, beta):
    theta, _ = selection.shape
    if beta >= theta:
        return selection.mean(axis=0)
    median = np.median(selection, axis=0)
    deviation = np.abs(selection - median[None, :])
    idx = np.argpartition(deviation, beta - 1, axis=0)[:beta, :]
    return np.take_along_axis(selection, idx, axis=0).mean(axis=0)


def oracle_bulyan(matrix, f):
    """Frozen seed Bulyan: shared-distance selection + trimmed aggregation."""
    n = matrix.shape[0]
    theta = n - 2 * f
    beta = theta - 2 * f
    n_neighbors = n - f - 2
    distances = oracle_pairwise_squared_distances(matrix)
    active = np.ones(n, dtype=bool)
    selected = []
    for _ in range(theta):
        remaining = np.flatnonzero(active)
        if remaining.size == 1:
            selected.append(int(remaining[0]))
            active[remaining[0]] = False
            continue
        sub = distances[np.ix_(remaining, remaining)].copy()
        np.fill_diagonal(sub, np.inf)
        q = min(n_neighbors, remaining.size - 1)
        capped = np.minimum(sub, _HUGE_ORACLE)
        part = np.partition(capped, q - 1, axis=1)[:, :q]
        scores = part.sum(axis=1)
        winner = remaining[int(np.argmin(scores))]
        selected.append(int(winner))
        active[winner] = False
    selected = np.asarray(selected, dtype=np.intp)
    return oracle_trimmed_mean_around_median(matrix[selected], beta), selected


def oracle_fill_non_finite(matrix):
    # PR-5 bugfix oracle: extremes are *per coordinate* (the seed's global
    # extremes turned a NaN in a small-magnitude coordinate into a
    # cross-scale outlier that distorted mean_around_center whenever `keep`
    # exceeded that coordinate's finite count).  Deliberately written with a
    # per-column loop, independently of the vectorised kernel.
    if np.isfinite(matrix).all():
        return matrix
    clean = matrix.copy()
    for col in range(matrix.shape[1]):
        column = matrix[:, col]
        finite_vals = column[np.isfinite(column)]
        hi = float(finite_vals.max()) + 1.0 if finite_vals.size else 1.0
        lo = float(finite_vals.min()) - 1.0 if finite_vals.size else -1.0
        clean[np.isnan(column), col] = hi
        clean[np.isposinf(column), col] = hi
        clean[np.isneginf(column), col] = lo
    return clean


def oracle_meamed(matrix, f):
    n = matrix.shape[0]
    keep = n - f
    clean = oracle_fill_non_finite(matrix)
    center = np.median(clean, axis=0)
    if keep >= n:
        return clean.mean(axis=0)
    deviation = np.abs(clean - center[None, :])
    idx = np.argpartition(deviation, keep - 1, axis=0)[:keep, :]
    return np.take_along_axis(clean, idx, axis=0).mean(axis=0)


def lace_non_finite(matrix, rng, num_rows):
    """Poison *num_rows* rows with NaN / ±Inf coordinates (in place copy)."""
    laced = matrix.copy()
    poison = (np.nan, np.inf, -np.inf)
    rows = rng.choice(matrix.shape[0], size=num_rows, replace=False)
    for row in rows:
        cols = rng.choice(matrix.shape[1], size=max(1, matrix.shape[1] // 3), replace=False)
        laced[row, cols] = rng.choice(poison, size=cols.size)
    return laced


def matrices(min_n=5, max_n=16, max_d=12, lace=False):
    """Strategy: a random (n, d) matrix, optionally NaN/Inf-laced, plus f."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_n, max_n))
        d = draw(st.integers(1, max_d))
        seed = draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, d)) * draw(st.sampled_from([1.0, 10.0, 1e-3]))
        num_laced = draw(st.integers(1, max(1, n // 4))) if lace else 0
        if num_laced:
            matrix = lace_non_finite(matrix, rng, num_laced)
        return matrix

    return build()


# ------------------------------------------------------------- kernel parity
@settings(max_examples=60, deadline=None)
@given(matrix=matrices(), seed=st.integers(0, 2**31))
def test_pairwise_distances_match_oracle_on_clean_input(matrix, seed):
    np.testing.assert_array_equal(
        kernels.pairwise_squared_distances(matrix),
        oracle_pairwise_squared_distances(matrix),
    )


@settings(max_examples=60, deadline=None)
@given(matrix=matrices(lace=True))
def test_pairwise_distances_match_oracle_on_laced_input(matrix):
    np.testing.assert_array_equal(
        kernels.pairwise_squared_distances(matrix),
        oracle_pairwise_squared_distances(matrix),
    )


@settings(max_examples=60, deadline=None)
@given(matrix=matrices(lace=True), f=st.integers(0, 3))
def test_neighbour_sum_scores_match_oracle(matrix, f):
    n = matrix.shape[0]
    if n - f - 2 < 1:
        return
    distances = kernels.pairwise_squared_distances(matrix)
    np.testing.assert_array_equal(
        kernels.neighbour_sum_scores(distances, n - f - 2),
        oracle_krum_scores(distances, f),
    )


@settings(max_examples=60, deadline=None)
@given(matrix=matrices(lace=True))
def test_fill_non_finite_extremes_matches_oracle(matrix):
    np.testing.assert_array_equal(
        kernels.fill_non_finite_extremes(matrix), oracle_fill_non_finite(matrix)
    )


@settings(max_examples=60, deadline=None)
@given(matrix=matrices(), beta=st.integers(1, 20))
def test_trimmed_mean_around_median_matches_oracle(matrix, beta):
    np.testing.assert_array_equal(
        kernels.trimmed_mean_around_median(matrix, beta),
        oracle_trimmed_mean_around_median(matrix, beta),
    )


# ---------------------------------------------------------------- GAR parity
@settings(max_examples=50, deadline=None)
@given(matrix=matrices(min_n=7), f=st.integers(0, 2), lace_seed=st.integers(0, 2**31))
def test_multi_krum_matches_pre_refactor_output(matrix, f, lace_seed):
    n = matrix.shape[0]
    if n < 2 * f + 3:
        return
    rng = np.random.default_rng(lace_seed)
    if f > 0 and rng.random() < 0.5:
        matrix = lace_non_finite(matrix, rng, f)
    gar = MultiKrum(f=f)
    m = gar.effective_m(n)
    expected, expected_sel = oracle_multi_krum(matrix, f, m)
    if not np.isfinite(matrix[expected_sel]).all():
        return  # the oracle itself would reject this input
    result = gar.aggregate_detailed(matrix)
    np.testing.assert_array_equal(result.gradient, expected)
    np.testing.assert_array_equal(result.selected_indices, expected_sel)


@settings(max_examples=40, deadline=None)
@given(matrix=matrices(min_n=7, max_n=15), f=st.integers(0, 2), lace_seed=st.integers(0, 2**31))
def test_bulyan_matches_pre_refactor_output(matrix, f, lace_seed):
    n = matrix.shape[0]
    if n < 4 * f + 3:
        return
    rng = np.random.default_rng(lace_seed)
    if f > 0 and rng.random() < 0.5:
        matrix = lace_non_finite(matrix, rng, f)
    expected, expected_sel = oracle_bulyan(matrix, f)
    if not np.isfinite(matrix[expected_sel]).all():
        return
    result = Bulyan(f=f).aggregate_detailed(matrix)
    np.testing.assert_array_equal(result.gradient, expected)
    np.testing.assert_array_equal(result.selected_indices, expected_sel)


@settings(max_examples=50, deadline=None)
@given(matrix=matrices(lace=True), f=st.integers(0, 2))
def test_meamed_matches_pre_refactor_output(matrix, f):
    n = matrix.shape[0]
    if n < 2 * f + 1:
        return
    np.testing.assert_array_equal(
        MeaMed(f=f).aggregate(matrix), oracle_meamed(matrix, f)
    )


def test_selection_gars_import_kernels_only_from_kernel_module():
    """No cross-imports between the selection rule modules (ISSUE acceptance)."""
    import ast
    import pathlib

    import repro.core as core_pkg

    root = pathlib.Path(core_pkg.__file__).parent
    rule_modules = {"krum", "bulyan", "meamed", "brute"}
    for module in rule_modules:
        tree = ast.parse((root / f"{module}.py").read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                imported = node.module.rsplit(".", 1)[-1]
                assert imported not in rule_modules - {module}, (
                    f"{module}.py imports from {node.module}; kernels must come "
                    "from repro.core.kernels only"
                )


def test_brute_uses_shared_distance_kernel(monkeypatch, rng):
    calls = []
    original = kernels.pairwise_squared_distances

    def spy(matrix):
        calls.append(matrix.shape)
        return original(matrix)

    # The selection GARs now route through the base class's provider hook
    # (GradientAggregationRule._distances), which resolves the kernel from
    # repro.core.kernels at call time — one audited hot path for everyone.
    monkeypatch.setattr(kernels, "pairwise_squared_distances", spy)
    Brute(f=1).aggregate(rng.standard_normal((7, 5)))
    assert calls == [(7, 5)]


# -------------------------------------------------------- kernel edge cases
def test_neighbour_sum_scores_rejects_bad_neighbour_counts():
    distances = np.zeros((4, 4))
    with pytest.raises(ResilienceConditionError):
        kernels.neighbour_sum_scores(distances, 0)
    with pytest.raises(ResilienceConditionError):
        kernels.neighbour_sum_scores(distances, 4)


def test_trimmed_mean_rejects_non_positive_beta():
    with pytest.raises(ResilienceConditionError):
        kernels.trimmed_mean_around_median(np.zeros((3, 2)), 0)


def test_huge_cap_sums_without_overflow():
    scores = kernels.neighbour_sum_scores(np.full((5, 5), np.inf), 3)
    assert np.isfinite(scores).all()
    assert (scores == 3 * kernels.HUGE).all()


def test_fill_non_finite_uses_per_coordinate_extremes():
    """Regression (PR-5): fills happen at the poisoned coordinate's own scale."""
    matrix = np.array([
        [1000.0, 0.010],
        [999.0, 0.011],
        [998.0, np.nan],
    ])
    clean = kernels.fill_non_finite_extremes(matrix)
    assert clean[2, 1] == pytest.approx(1.011)  # 0.011 + 1, not the global 1001
    np.testing.assert_array_equal(clean[:, 0], matrix[:, 0])
    assert clean[2, 0] == 998.0


def test_fill_non_finite_column_without_finite_entries_falls_back():
    matrix = np.array([[np.nan, 1.0], [np.inf, 2.0], [-np.inf, 3.0]])
    clean = kernels.fill_non_finite_extremes(matrix)
    np.testing.assert_array_equal(clean[:, 0], [1.0, 1.0, -1.0])
    np.testing.assert_array_equal(clean[:, 1], [1.0, 2.0, 3.0])


def test_fill_non_finite_scales_to_fleet_sized_matrices():
    """The masked-numpy rewrite must stay fast at (1000, 10000).

    The pre-vectorisation implementation looped over poisoned coordinates in
    Python and took tens of seconds at this shape; the vectorised kernel runs
    in well under a second.  The bound is deliberately loose (slow shared CI
    runners), but tight enough that any reversion to a per-coordinate Python
    loop fails immediately.
    """
    import time

    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((1000, 10000))
    poison = rng.random((1000, 10000)) < 0.01
    matrix[poison] = np.nan
    matrix[0, :5] = np.inf
    matrix[1, :5] = -np.inf
    matrix[:, 0] = np.nan  # one column with no finite entries at all
    start = time.perf_counter()
    clean = kernels.fill_non_finite_extremes(matrix)
    elapsed = time.perf_counter() - start
    assert np.isfinite(clean).all()
    assert elapsed < 3.0, f"fill_non_finite_extremes took {elapsed:.2f}s at (1000, 10000)"


def test_meamed_not_distorted_by_cross_scale_nan_fill():
    """Regression (PR-5): a NaN in a small coordinate must not drag MeaMed.

    ``keep = n - f = 3`` exceeds the poisoned coordinate's finite count (2),
    so one substituted value necessarily enters the per-coordinate mean.
    With the seed's *global* extremes the substitute was ~1001 — three
    orders of magnitude off the coordinate's own range — and the output
    blew up to ~330; with per-coordinate extremes the substitute stays at
    the coordinate's scale and the output stays near the honest values.
    """
    matrix = np.array([
        [1000.0, 0.010],
        [999.0, 0.012],
        [998.0, np.nan],
        [997.0, np.nan],
    ])
    out = MeaMed(f=1).aggregate(matrix)
    assert 0.0 < out[1] < 2.0  # the global-fill bug produced ~334 here
    assert 997.0 <= out[0] <= 1000.0


# ------------------------------------------------- max_byzantine closed form
def test_max_byzantine_closed_form_matches_scan_for_all_rules():
    for name, cls in sorted(GAR_REGISTRY.items()):
        assert cls.min_workers_linear is not None, f"{name} lost its closed form"
        for n in range(0, 65):
            assert cls.max_byzantine(n) == cls._max_byzantine_scan(n), (
                f"{name}: closed form disagrees with the scan at n={n}"
            )


def test_max_byzantine_known_values_unchanged():
    assert MultiKrum.max_byzantine(19) == 8
    assert MultiKrum.max_byzantine(2 * 4 + 3) == 4
    assert Bulyan.max_byzantine(19) == 4
    assert Bulyan.max_byzantine(4 * 2 + 3) == 2
    assert Brute.max_byzantine(3) == 1
    assert MeaMed.max_byzantine(11) == 5
    assert Phocas.max_byzantine(11) == 5


def test_register_gar_rejects_inconsistent_linear_declaration():
    from repro.core.base import register_gar
    from repro.core.base import AggregationResult

    class Lying(GradientAggregationRule):
        resilience = "weak"
        min_workers_linear = (3, 1)  # wrong: minimum_workers says 2f + 1

        @classmethod
        def minimum_workers(cls, f):
            return 2 * f + 1

        def _aggregate(self, matrix):
            return AggregationResult(gradient=matrix.mean(axis=0))

    with pytest.raises(ConfigurationError, match="disagrees"):
        register_gar("lying-rule-xyz")(Lying)


def test_scan_fallback_used_when_no_closed_form():
    from repro.core.base import AggregationResult

    class NonLinear(GradientAggregationRule):
        resilience = "weak"
        min_workers_linear = None

        @classmethod
        def minimum_workers(cls, f):
            return f * f + 1  # deliberately non-linear

        def _aggregate(self, matrix):
            return AggregationResult(gradient=matrix.mean(axis=0))

    assert NonLinear.max_byzantine(10) == 3  # 3^2 + 1 = 10 <= 10 < 4^2 + 1
    assert NonLinear.max_byzantine(0) == 0
