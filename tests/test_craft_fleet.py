"""Regression tests for the batched Byzantine crafting path.

``craft_fleet`` must (a) mint all ``f`` malicious gradients with ONE
``attack.craft`` call per version when the shared attack is deterministic,
(b) fall back to the per-worker loop — preserving each worker's RNG-stream
consumption — when the attack draws noise, and (c) change nothing
observable either way: same messages, same telemetry, same bytes on the
wire, bit-identical training trajectory.
"""

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.cluster.builder import build_trainer
from repro.cluster.trainer import TrainerConfig
from repro.cluster.worker import ByzantineWorker, craft_fleet
from repro.data.datasets import gaussian_blobs


class _CountingAttack:
    """Wraps an attack, counting ``craft`` calls (keeps ``deterministic``)."""

    def __init__(self, inner):
        self._inner = inner
        self.deterministic = getattr(inner, "deterministic", False)
        self.calls = 0

    def craft(self, **kwargs):
        self.calls += 1
        return self._inner.craft(**kwargs)


def _byzantine_workers(attack, f=3, seed=0):
    # One shared attack object, one shared RNG source — the builder's wiring.
    return [ByzantineWorker(i, attack, rng=seed) for i in range(f)]


def test_deterministic_attack_crafts_once_per_version():
    attack = _CountingAttack(make_attack("sign-flip"))
    workers = _byzantine_workers(attack)
    honest = np.random.default_rng(0).standard_normal((5, 7))
    params = np.zeros(7)
    messages = craft_fleet(workers, params, honest, step=4)
    assert attack.calls == 1
    assert [m.worker_id for m in messages] == [0, 1, 2]
    assert all(m.step == 4 for m in messages)


def test_randomised_attack_falls_back_to_per_worker_calls():
    attack = _CountingAttack(make_attack("random"))
    workers = _byzantine_workers(attack)
    honest = np.random.default_rng(0).standard_normal((5, 7))
    craft_fleet(workers, np.zeros(7), honest, step=1)
    assert attack.calls == len(workers)


def test_batched_messages_are_bit_identical_to_the_loop():
    honest = np.random.default_rng(1).standard_normal((6, 9))
    params = np.linspace(-1, 1, 9)
    for name in ("sign-flip", "little-is-enough", "omniscient", "mimic"):
        attack = make_attack(name, f=3) if name == "omniscient" else make_attack(name)
        batched_workers = _byzantine_workers(attack, seed=3)
        loop_workers = _byzantine_workers(attack, seed=3)
        batched = craft_fleet(batched_workers, params, honest, step=2)
        loop = [
            w.craft_gradient(params, honest, 2, num_byzantine=len(loop_workers), index=i)
            for i, w in enumerate(loop_workers)
        ]
        for got, want in zip(batched, loop):
            assert got.worker_id == want.worker_id
            np.testing.assert_array_equal(got.gradient, want.gradient)
            assert np.isnan(got.loss) and np.isnan(want.loss)


def test_empty_honest_window_degrades_to_zero_row_in_both_paths():
    attack = make_attack("sign-flip")
    workers = _byzantine_workers(attack)
    batched = craft_fleet(workers, np.ones(5), np.empty((0, 5)), step=0)
    loop = [
        w.craft_gradient(np.ones(5), np.empty((0, 5)), 0, num_byzantine=3, index=i)
        for i, w in enumerate(workers)
    ]
    for got, want in zip(batched, loop):
        np.testing.assert_array_equal(got.gradient, want.gradient)


@pytest.mark.parametrize("mode", ["sync", "async"])
def test_trainer_accounting_is_unchanged_by_the_batched_path(mode, monkeypatch):
    """Forcing the per-worker fallback must not change a single recorded bit."""

    def run(force_fallback: bool):
        if force_fallback:
            from repro.attacks.reversed_gradient import SignFlipAttack

            monkeypatch.setattr(SignFlipAttack, "deterministic", False)
        kwargs = dict(
            model="logistic",
            model_kwargs={"input_dim": 10, "num_classes": 5},
            dataset=gaussian_blobs(num_train=1000, num_classes=5, dim=10, rng=3),
            gar="median",
            num_workers=10,
            num_byzantine=3,
            attack="sign-flip",
            batch_size=16,
            learning_rate=0.05,
            seed=11,
        )
        if mode == "async":
            kwargs.update(mode="async", sync_policy="quorum")
        trainer = build_trainer(**kwargs)
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        result = (trainer.server.parameters, history.to_dict())
        monkeypatch.undo()
        return result

    fast_params, fast_history = run(force_fallback=False)
    slow_params, slow_history = run(force_fallback=True)
    np.testing.assert_array_equal(fast_params, slow_params)
    assert fast_history == slow_history
