"""Tests for the synthetic dataset generators and the Dataset container."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    available_datasets,
    gaussian_blobs,
    linear_regression_task,
    load_dataset,
    synthetic_cifar,
    synthetic_mnist,
    two_spirals,
)
from repro.exceptions import ConfigurationError


class TestDatasetContainer:
    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            Dataset(rng.standard_normal((10, 3)), np.zeros(9), rng.standard_normal((2, 3)), np.zeros(2))

    def test_properties(self, tiny_dataset):
        assert tiny_dataset.num_train == 300
        assert tiny_dataset.num_test == 80
        assert tiny_dataset.feature_shape == (8,)
        assert tiny_dataset.num_classes == 3

    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset(50)
        assert subset.num_train == 50
        assert subset.num_test == tiny_dataset.num_test

    def test_subset_invalid_size(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            tiny_dataset.subset(0)
        with pytest.raises(ConfigurationError):
            tiny_dataset.subset(10_000)


class TestGenerators:
    def test_blobs_learnable_and_deterministic(self):
        a = gaussian_blobs(rng=5)
        b = gaussian_blobs(rng=5)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        assert set(np.unique(a.train_y)) <= set(range(3))

    def test_blobs_different_seeds_differ(self):
        assert not np.allclose(gaussian_blobs(rng=1).train_x, gaussian_blobs(rng=2).train_x)

    def test_spirals_binary(self):
        ds = two_spirals(num_train=200, num_test=50, rng=0)
        assert ds.num_classes == 2
        assert ds.train_x.shape == (200, 2)
        assert set(np.unique(ds.train_y)) == {0, 1}

    def test_linear_regression_targets_shape(self):
        ds = linear_regression_task(num_train=100, num_test=20, dim=5, rng=0)
        assert ds.train_y.shape == (100, 1)
        assert ds.num_classes == 0

    def test_synthetic_cifar_shapes_and_range(self):
        ds = synthetic_cifar(num_train=50, num_test=10, image_size=16, rng=0)
        assert ds.train_x.shape == (50, 3, 16, 16)
        assert ds.test_x.shape == (10, 3, 16, 16)
        assert ds.train_x.min() >= 0.0 and ds.train_x.max() <= 1.0
        assert ds.test_x.min() >= 0.0 and ds.test_x.max() <= 1.0

    def test_synthetic_mnist_single_channel(self):
        ds = synthetic_mnist(num_train=30, num_test=10, image_size=14, rng=0)
        assert ds.train_x.shape == (30, 1, 14, 14)
        assert ds.num_classes == 10

    def test_synthetic_images_are_learnable(self):
        """A linear classifier on flattened synthetic CIFAR beats chance easily."""
        from repro.nn.models import logistic_regression
        from repro.optim import Adam

        ds = synthetic_cifar(num_train=400, num_test=100, image_size=8, num_classes=4, rng=0)
        flat_train = ds.train_x.reshape(ds.num_train, -1)
        flat_test = ds.test_x.reshape(ds.num_test, -1)
        model = logistic_regression(input_dim=flat_train.shape[1], num_classes=4, rng=0)
        optimizer = Adam(learning_rate=1e-2)
        params = model.get_parameters()
        sampler = np.random.default_rng(0)
        for _ in range(100):
            idx = sampler.integers(0, ds.num_train, size=64)
            model.set_parameters(params)
            _, grad = model.loss_and_gradient(flat_train[idx], ds.train_y[idx])
            params = optimizer.step(params, grad)
        model.set_parameters(params)
        assert model.accuracy(flat_test, ds.test_y) > 0.6

    def test_registry(self):
        assert {"blobs", "spirals", "linreg", "synthetic-cifar", "synthetic-mnist"} <= set(
            available_datasets()
        )
        ds = load_dataset("blobs", num_train=50, num_test=10, rng=0)
        assert ds.num_train == 50
        with pytest.raises(ConfigurationError):
            load_dataset("imagenet")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            gaussian_blobs(num_train=0)
        with pytest.raises(ConfigurationError):
            synthetic_cifar(image_size=0)
