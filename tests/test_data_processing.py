"""Tests for preprocessing, sampling and corruption utilities."""

import numpy as np
import pytest

from repro.data import (
    MiniBatchSampler,
    corrupt_features,
    flip_labels,
    min_max_scale,
    one_hot,
    permute_labels,
    train_test_split,
)
from repro.exceptions import ConfigurationError


class TestMinMaxScale:
    def test_2d_scaled_to_unit_interval(self, rng):
        x = rng.standard_normal((50, 4)) * 10 + 3
        scaled = min_max_scale(x)
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_image_tensor_scaled_per_channel(self, rng):
        x = rng.standard_normal((10, 3, 4, 4))
        scaled = min_max_scale(x)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_return_bounds(self, rng):
        x = rng.standard_normal((20, 5))
        scaled, low, high = min_max_scale(x, return_bounds=True)
        np.testing.assert_allclose((x - low) / (high - low), scaled)

    def test_constant_feature_does_not_divide_by_zero(self):
        x = np.ones((5, 2))
        scaled = min_max_scale(x)
        assert np.isfinite(scaled).all()

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            min_max_scale(np.ones(5))


class TestTrainTestSplit:
    def test_sizes(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.integers(0, 2, size=100)
        train_x, train_y, test_x, test_y = train_test_split(x, y, test_fraction=0.25, rng=0)
        assert train_x.shape[0] == 75 and test_x.shape[0] == 25
        assert train_y.shape[0] == 75 and test_y.shape[0] == 25

    def test_partition_is_disjoint_and_complete(self, rng):
        x = np.arange(50, dtype=float).reshape(50, 1)
        y = np.arange(50)
        train_x, _, test_x, _ = train_test_split(x, y, test_fraction=0.2, rng=1)
        combined = np.sort(np.concatenate([train_x.ravel(), test_x.ravel()]))
        np.testing.assert_array_equal(combined, np.arange(50, dtype=float))

    def test_invalid_fraction(self, rng):
        x, y = rng.standard_normal((10, 2)), np.zeros(10)
        with pytest.raises(ConfigurationError):
            train_test_split(x, y, test_fraction=1.0)


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([0, 3]), 3)

    def test_2d_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.zeros((3, 2), dtype=int), 2)


class TestMiniBatchSampler:
    def test_batch_shapes(self, tiny_dataset):
        sampler = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 16, rng=0)
        x, y = sampler.sample()
        assert x.shape == (16, 8)
        assert y.shape == (16,)

    def test_deterministic_given_seed(self, tiny_dataset):
        a = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 8, rng=3).sample()
        b = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 8, rng=3).sample()
        np.testing.assert_array_equal(a[0], b[0])

    def test_different_seeds_differ(self, tiny_dataset):
        a = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 8, rng=3).sample()
        b = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 8, rng=4).sample()
        assert not np.allclose(a[0], b[0])

    def test_batch_larger_than_dataset_allowed(self):
        # Sampling is with replacement, so the batch can exceed the dataset size.
        x, y = np.ones((5, 2)), np.zeros(5)
        sampler = MiniBatchSampler(x, y, 20, rng=0)
        batch_x, _ = sampler.sample()
        assert batch_x.shape == (20, 2)

    def test_iterator_protocol(self, tiny_dataset):
        sampler = MiniBatchSampler(tiny_dataset.train_x, tiny_dataset.train_y, 4, rng=0)
        iterator = iter(sampler)
        x, y = next(iterator)
        assert x.shape[0] == 4

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            MiniBatchSampler(np.zeros((0, 3)), np.zeros(0), 4)

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            MiniBatchSampler(np.zeros((5, 3)), np.zeros(4), 2)


class TestCorruption:
    def test_flip_labels_full_fraction(self):
        labels = np.zeros(100, dtype=int)
        flipped = flip_labels(labels, 10, fraction=1.0, rng=0)
        assert (flipped != 0).all()
        assert ((flipped >= 0) & (flipped < 10)).all()

    def test_flip_labels_partial_fraction(self):
        labels = np.zeros(100, dtype=int)
        flipped = flip_labels(labels, 10, fraction=0.3, rng=0)
        assert (flipped != 0).sum() == 30

    def test_flip_labels_does_not_modify_input(self):
        labels = np.zeros(10, dtype=int)
        flip_labels(labels, 5, rng=0)
        assert (labels == 0).all()

    def test_permute_labels_is_a_bijection(self):
        labels = np.arange(10)
        permuted = permute_labels(labels, 10, rng=0)
        assert set(permuted.tolist()) == set(range(10))
        assert not np.array_equal(permuted, labels)

    def test_permute_labels_consistent_mapping(self):
        labels = np.array([0, 1, 0, 2, 1])
        permuted = permute_labels(labels, 3, rng=1)
        # The same original label always maps to the same corrupted label.
        assert permuted[0] == permuted[2]
        assert permuted[1] == permuted[4]

    def test_corrupt_features_scale(self, rng):
        features = rng.standard_normal((50, 4)) * 0.01
        corrupted = corrupt_features(features, scale=10.0, rng=0)
        assert np.abs(corrupted).std() > np.abs(features).std() * 10

    def test_corrupt_features_partial(self, rng):
        features = np.zeros((100, 3))
        corrupted = corrupt_features(features, fraction=0.2, scale=5.0, rng=0)
        changed_rows = (np.abs(corrupted).sum(axis=1) > 0).sum()
        assert changed_rows == 20

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            flip_labels(np.zeros(5, dtype=int), 1)
        with pytest.raises(ConfigurationError):
            corrupt_features(np.zeros((5, 2)), scale=0.0)
