"""Property and integration tests for the cross-round distance cache.

The frozen oracle below is an independent, dict-and-set reimplementation of
the cache's *bookkeeping* contract (rows keyed by content, unordered pairs,
carry-pool retention); the numerical contract is pinned against
``kernels.pairwise_squared_distances`` directly — the cache must serve the
audited kernel's values bit for bit under any insert / evict / carry
sequence, because the cluster layer's cache-on/cache-off bit-identity
guarantee rests on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.builder import build_trainer
from repro.cluster.checkpoint import (
    capture_training_state,
    load_training_state,
    restore_training_state,
    save_training_state,
)
from repro.cluster.cost_model import CostModel, StragglerModel
from repro.cluster.trainer import TrainerConfig
from repro.core import Bulyan, MultiKrum, kernels
from repro.core.distance_cache import (
    PAIR_FLOPS_PER_COORDINATE,
    DistanceCache,
    DistanceRoundStats,
    row_fingerprint,
)
from repro.data.datasets import gaussian_blobs
from repro.exceptions import ConfigurationError


# --------------------------------------------------------------------- oracle
class OracleBookkeeping:
    """Independent reference for the cache's hit/miss/retention contract."""

    def __init__(self):
        self.rows = set()
        self.pairs = set()

    @staticmethod
    def _key(row):
        return np.ascontiguousarray(row, dtype=np.float64).tobytes()

    def round(self, matrix, warm_rows=None, carry=None):
        """One round: optional warm, one query, carry-pool eviction.

        Returns the stats the cache should report for the same sequence.
        The flop convention: ``d`` per row registered for the first time
        (its squared norm) and ``2 d`` per newly computed pair, so a fully
        fresh round of ``n`` rows prices at ``n^2 d``.
        """
        d = matrix.shape[1]
        known_at_start = set(self.rows)
        seen = set()
        stats = dict(hit_rows=0, miss_rows=0, hit_pairs=0, miss_pairs=0,
                     warmed_pairs=0, quarantined=0,
                     charged_flops=0.0, warmed_flops=0.0)

        def observe(rows):
            new = 0
            for row in rows:
                if not np.isfinite(row).all():
                    stats["quarantined"] += 1
                    continue
                key = self._key(row)
                if key not in seen:
                    seen.add(key)
                    if key in known_at_start:
                        stats["hit_rows"] += 1
                    else:
                        stats["miss_rows"] += 1
                if key not in self.rows:
                    self.rows.add(key)
                    new += 1
            return new

        def finite_keys(rows):
            return [self._key(r) for r in rows if np.isfinite(r).all()]

        def warm_phase(rows):
            stats["warmed_flops"] += d * observe(rows)
            keys = finite_keys(rows)
            for i in range(len(keys)):
                for j in range(i + 1, len(keys)):
                    pair = tuple(sorted((keys[i], keys[j])))
                    if pair not in self.pairs:
                        self.pairs.add(pair)
                        stats["warmed_pairs"] += 1
                        stats["warmed_flops"] += 2 * d

        if warm_rows is not None and len(warm_rows):
            warm_phase(warm_rows)

        stats["charged_flops"] += d * observe(matrix)
        keys = finite_keys(matrix)
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                pair = tuple(sorted((keys[i], keys[j])))
                if pair in self.pairs:
                    stats["hit_pairs"] += 1
                else:
                    self.pairs.add(pair)
                    stats["miss_pairs"] += 1
                    stats["charged_flops"] += 2 * d

        if carry is not None and len(carry):
            warm_phase(carry)
            keep = set(finite_keys(carry))
        else:
            keep = set()
        self.rows = {k for k in self.rows if k in keep}
        self.pairs = {p for p in self.pairs if p[0] in keep and p[1] in keep}
        return stats


def round_sequences(max_rounds=5, max_n=10, max_d=8):
    """Strategy: a sequence of rounds, each carrying a random row subset."""

    @st.composite
    def build(draw):
        d = draw(st.integers(1, max_d))
        seed = draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        rounds = []
        carried = np.zeros((0, d))
        for _ in range(draw(st.integers(1, max_rounds))):
            fresh = rng.standard_normal((draw(st.integers(2, max_n)), d))
            matrix = np.vstack([carried, fresh]) if len(carried) else fresh
            if draw(st.booleans()):
                poison = draw(st.integers(0, max(0, matrix.shape[0] - 2)))
                matrix = matrix.copy()
                for row in range(poison):
                    matrix[row, rng.integers(d)] = rng.choice([np.nan, np.inf, -np.inf])
            carry_count = draw(st.integers(0, matrix.shape[0]))
            carry_idx = rng.choice(matrix.shape[0], size=carry_count, replace=False)
            rounds.append((matrix, carry_idx))
            carried = matrix[sorted(carry_idx)]
        return rounds

    return build()


@settings(max_examples=40, deadline=None)
@given(rounds=round_sequences())
def test_cache_parity_and_bookkeeping_under_carry_sequences(rounds):
    """Values match the kernel bit for bit; stats match the frozen oracle."""
    cache = DistanceCache()
    oracle = OracleBookkeeping()
    for matrix, carry_idx in rounds:
        carry = matrix[sorted(carry_idx)] if len(carry_idx) else None
        cache.begin_round()
        served = cache.distances(matrix)
        np.testing.assert_array_equal(
            served, kernels.pairwise_squared_distances(matrix)
        )
        stats = cache.end_round(carry)
        expected = oracle.round(matrix, carry=carry)
        assert stats.hit_rows == expected["hit_rows"]
        assert stats.miss_rows == expected["miss_rows"]
        assert stats.hit_pairs == expected["hit_pairs"]
        assert stats.miss_pairs == expected["miss_pairs"]
        assert stats.warmed_pairs == expected["warmed_pairs"]
        assert stats.quarantined_rows == expected["quarantined"]
        assert stats.charged_flops == pytest.approx(expected["charged_flops"])
        assert stats.warmed_flops == pytest.approx(expected["warmed_flops"])
        # Retention is exactly the carry pool.
        finite_carry = (
            [r for r in carry if np.isfinite(r).all()] if carry is not None else []
        )
        assert cache.known_rows == len({row_fingerprint(r) for r in finite_carry})


@settings(max_examples=30, deadline=None)
@given(rounds=round_sequences(max_rounds=4))
def test_cache_warm_then_query_matches_oracle(rounds):
    """Warming a prefix off-path leaves only the remaining pairs as misses."""
    cache = DistanceCache()
    oracle = OracleBookkeeping()
    for matrix, carry_idx in rounds:
        carry = matrix[sorted(carry_idx)] if len(carry_idx) else None
        split = matrix.shape[0] // 2
        warm_rows = matrix[:split] if split else None
        cache.begin_round()
        if warm_rows is not None and len(warm_rows):
            cache.warm(warm_rows)
        np.testing.assert_array_equal(
            cache.distances(matrix), kernels.pairwise_squared_distances(matrix)
        )
        stats = cache.end_round(carry)
        expected = oracle.round(matrix, warm_rows=warm_rows, carry=carry)
        assert stats.warmed_pairs == expected["warmed_pairs"]
        assert stats.miss_pairs == expected["miss_pairs"]
        assert stats.hit_pairs == expected["hit_pairs"]
        assert stats.charged_flops == pytest.approx(expected["charged_flops"])
        assert stats.warmed_flops == pytest.approx(expected["warmed_flops"])


def test_non_finite_rows_are_quarantined_not_cached(rng):
    cache = DistanceCache()
    matrix = rng.standard_normal((6, 10))
    matrix[2, 3] = np.nan
    matrix[4, 0] = np.inf
    cache.begin_round()
    served = cache.distances(matrix)
    assert np.isinf(served[2, :]).sum() == matrix.shape[0] - 1  # diag stays 0
    np.testing.assert_array_equal(
        served, kernels.pairwise_squared_distances(matrix)
    )
    stats = cache.end_round(matrix)  # try to carry everything
    assert stats.quarantined_rows == 4  # 2 bad rows seen twice (query + carry)
    assert cache.known_rows == 4  # the finite ones only
    assert not cache.knows_row(matrix[2])
    assert not cache.knows_row(matrix[4])


def test_identical_repeat_query_is_all_hits_and_memoised(rng):
    cache = DistanceCache()
    matrix = rng.standard_normal((7, 12))
    cache.begin_round()
    first = cache.distances(matrix)
    again = cache.distances(matrix)
    np.testing.assert_array_equal(first, again)
    stats = cache.end_round(None)
    assert stats.miss_pairs == 21 and stats.hit_pairs == 21
    assert stats.queries == 2


def test_rebuild_reproduces_carry_pool_state(rng):
    """Post-restore rebuild == the uninterrupted cache's between-round state."""
    d = 9
    carried = rng.standard_normal((4, d))
    live = DistanceCache()
    live.begin_round()
    live.distances(np.vstack([carried, rng.standard_normal((5, d))]))
    live.end_round(carried)

    rebuilt = DistanceCache()
    rebuilt.rebuild(carried)
    assert rebuilt.known_rows == live.known_rows
    assert rebuilt.cached_pairs == live.cached_pairs
    assert rebuilt.last_round is None  # a rebuild is not a round

    # The next round must report identical stats from either cache.
    next_matrix = np.vstack([carried[:2], rng.standard_normal((4, d))])
    results = []
    for cache in (live, rebuilt):
        cache.begin_round()
        cache.distances(next_matrix)
        results.append(cache.end_round(None).to_dict())
    assert results[0] == results[1]
    assert results[0]["hit_rows"] == 2
    assert results[0]["hit_pairs"] == 1  # the carried[:2] mutual block


def test_rebuild_from_empty_pool_resets():
    cache = DistanceCache()
    cache.begin_round()
    cache.distances(np.ones((3, 2)) * np.arange(3)[:, None])
    cache.end_round(np.ones((2, 2)))
    cache.rebuild(None)
    assert cache.known_rows == 0 and cache.cached_pairs == 0


def test_capacity_bound_evicts_oldest(rng):
    cache = DistanceCache(max_rows=8)
    cache.begin_round()
    first = rng.standard_normal((5, 4))
    cache.distances(first)
    second = rng.standard_normal((6, 4))
    cache.distances(second)
    assert cache.known_rows <= 8
    # The current query's rows are always protected.
    for row in second:
        assert cache.knows_row(row)


def test_cache_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        DistanceCache(max_rows=0)
    with pytest.raises(ConfigurationError):
        DistanceCache().distances(np.ones(3))


def test_fresh_round_prices_exactly_the_uncached_distance_share(rng):
    """Zero hits => the cache charges the full n^2 d share, not a discount."""
    n, d = 9, 120
    cache = DistanceCache()
    cache.begin_round()
    cache.distances(rng.standard_normal((n, d)))
    stats = cache.end_round(None)
    assert stats.hit_pairs == 0
    assert stats.charged_flops == pytest.approx(
        PAIR_FLOPS_PER_COORDINATE * d * n * (n - 1) / 2 + d * n
    )
    assert stats.charged_flops == pytest.approx(float(n * n * d))


# ----------------------------------------------------------- cost-model tier
class TestCacheAwarePricing:
    def test_zero_hit_cached_round_prices_like_uncached(self, rng):
        # A cache with no reuse must not quietly pad the comparison: the
        # charged flops equal the analytic distance share exactly.
        model = CostModel()
        matrix = rng.standard_normal((11, 500))
        gar = MultiKrum(f=2)
        _, uncached = model.aggregation_time_detailed(gar, matrix)
        cache = DistanceCache()
        cache.begin_round()
        _, cached = model.aggregation_time_detailed(gar, matrix, distance_cache=cache)
        assert cached == pytest.approx(uncached)
        assert cached <= uncached

    def test_full_hit_round_charges_no_distance_flops(self, rng):
        model = CostModel()
        matrix = rng.standard_normal((11, 500))
        gar = Bulyan(f=2)
        cache = DistanceCache()
        cache.begin_round()
        cache.warm(matrix)  # every block precomputed off-path
        result, seconds = model.aggregation_time_detailed(
            gar, matrix, distance_cache=cache
        )
        distance, parallel, serial = model.aggregation_flops_split(gar, 11, 500)
        expected = (parallel / model.server_cores + serial) / (model.server_gflops * 1e9)
        assert seconds == pytest.approx(expected)
        np.testing.assert_array_equal(
            result.gradient, Bulyan(f=2).aggregate(matrix)
        )

    def test_provider_not_installed_outside_the_call(self, rng):
        model = CostModel()
        gar = MultiKrum(f=1)
        cache = DistanceCache()
        model.aggregation_time_detailed(
            gar, rng.standard_normal((7, 20)), distance_cache=cache
        )
        assert gar.distance_provider is None

    def test_overlap_excess_charges_overflow_only(self):
        model = CostModel(server_gflops=1e-9 * 1000)  # 1000 flop/s
        assert model.distance_overlap_excess(500.0, 1.0) == pytest.approx(0.0)
        assert model.distance_overlap_excess(1500.0, 1.0) == pytest.approx(0.5)
        assert model.distance_overlap_excess(1500.0, -3.0) == pytest.approx(1.5)


# --------------------------------------------------------- cluster-layer tier
@pytest.fixture(scope="module")
def carry_dataset():
    return gaussian_blobs(
        num_train=240, num_test=60, num_classes=3, dim=8, separation=3.0,
        noise=0.8, rng=0
    )


def _carry_trainer(dataset, *, distance_cache, server_cores=1, seed=7):
    """Bulyan under quorum(carry) with heavy stragglers: a carry-heavy run."""
    return build_trainer(
        model="mlp",
        model_kwargs={"input_dim": 8, "hidden": (12,), "num_classes": 3},
        dataset=dataset,
        gar="bulyan",
        num_workers=15,
        declared_f=2,
        batch_size=16,
        sync_policy="quorum",
        sync_kwargs={"quorum": 13, "stragglers": "carry"},
        straggler_model=StragglerModel(distribution="pareto", prob=0.6, scale=3.0),
        distance_cache=distance_cache,
        server_cores=server_cores,
        seed=seed,
    )


class TestTrainerIntegration:
    def test_bulyan_quorum_carry_bit_identical_with_nonzero_hits(self, carry_dataset):
        """The PR's acceptance property, at test scale."""
        config = TrainerConfig(max_steps=8, eval_every=4)
        off = _carry_trainer(carry_dataset, distance_cache=False)
        history_off = off.run(config)
        on = _carry_trainer(carry_dataset, distance_cache=True)
        history_on = on.run(config)

        np.testing.assert_array_equal(off.server.parameters, on.server.parameters)
        assert history_off.sync_summary()["carried_gradients"] > 0

        summary = history_on.distance_cache_summary()
        assert summary["hit_rows"] > 0 and summary["hit_pairs"] > 0
        assert summary["distance_flops"] > 0
        assert sum(r.aggregation_time for r in history_on.steps) < sum(
            r.aggregation_time for r in history_off.steps
        )
        # The uncached run reports no cache activity at all.
        off_summary = history_off.distance_cache_summary()
        assert off_summary["hit_pairs"] == 0 and off_summary["miss_pairs"] == 0

    def test_step_records_carry_cache_fields(self, carry_dataset):
        trainer = _carry_trainer(carry_dataset, distance_cache=True)
        trainer.run(TrainerConfig(max_steps=4, eval_every=0))
        later = trainer.history.steps[1:]
        assert any(r.cache_hit_rows > 0 for r in later)
        assert all(r.distance_flops >= 0 for r in trainer.history.steps)
        assert any(r.overlapped_flops > 0 for r in trainer.history.steps)

    def test_server_cores_compose_with_cache_bit_identically(self, carry_dataset):
        config = TrainerConfig(max_steps=6, eval_every=0)
        base = _carry_trainer(carry_dataset, distance_cache=False)
        base.run(config)
        sharded = _carry_trainer(carry_dataset, distance_cache=True, server_cores=4)
        sharded.run(config)
        np.testing.assert_array_equal(base.server.parameters, sharded.server.parameters)
        assert sum(r.aggregation_time for r in sharded.history.steps) < sum(
            r.aggregation_time for r in base.history.steps
        )

    def test_resume_is_bit_identical_including_cache_pricing(
        self, carry_dataset, tmp_path
    ):
        """Cache = derived state: invalidate + rebuild keeps resume exact."""
        reference = _carry_trainer(carry_dataset, distance_cache=True)
        reference.run(TrainerConfig(max_steps=8, eval_every=0))

        first = _carry_trainer(carry_dataset, distance_cache=True)
        first.run(TrainerConfig(max_steps=4, eval_every=0))
        path = save_training_state(capture_training_state(first), tmp_path / "state")

        resumed = _carry_trainer(carry_dataset, distance_cache=True)
        restore_training_state(resumed, load_training_state(path))
        resumed.run(TrainerConfig(max_steps=4, eval_every=0))

        np.testing.assert_array_equal(
            reference.server.parameters, resumed.server.parameters
        )
        assert resumed.clock.now == pytest.approx(reference.clock.now)
        # Per-step cache pricing after the resume point matches the
        # uninterrupted run exactly (the rebuild restored the carry blocks).
        for ref, res in zip(reference.history.steps[4:], resumed.history.steps):
            assert ref.aggregation_time == res.aggregation_time
            assert ref.cache_hit_rows == res.cache_hit_rows
            assert ref.cache_hit_pairs == res.cache_hit_pairs
            assert ref.distance_flops == res.distance_flops

    def test_carry_warm_is_billed_against_the_next_round(self, carry_dataset):
        """End-of-round warming is debt for the next wait, never silently free."""
        trainer = _carry_trainer(carry_dataset, distance_cache=True)
        trainer.run(TrainerConfig(max_steps=4, eval_every=0))
        # The last round carried gradients, so their warm debt is pending.
        assert trainer.history.steps[-1].carried_gradients > 0
        assert trainer._warm_debt > 0
        # The debt is consumed (and re-accrued) by the next step's budget.
        debt = trainer._warm_debt
        trainer.run_step()
        excess = trainer.cost_model.distance_overlap_excess(
            debt, trainer.history.steps[-1].compute_comm_time
        )
        assert excess == 0.0  # at this scale the wait absorbs it...
        slow = CostModel(server_gflops=1e-9)  # ...but a 1 flop/s server cannot
        assert slow.distance_overlap_excess(debt, 1.0) > 0.0

    def test_warm_debt_round_trips_through_checkpoints(self, carry_dataset, tmp_path):
        trainer = _carry_trainer(carry_dataset, distance_cache=True)
        trainer.run(TrainerConfig(max_steps=4, eval_every=0))
        state = capture_training_state(trainer)
        assert state.distance_warm_debt == trainer._warm_debt
        path = save_training_state(state, tmp_path / "debt")
        loaded = load_training_state(path)
        assert loaded.distance_warm_debt == trainer._warm_debt
        target = _carry_trainer(carry_dataset, distance_cache=True)
        restore_training_state(target, loaded)
        assert target._warm_debt == trainer._warm_debt

    def test_restore_invalidates_cache(self, carry_dataset, tmp_path):
        trainer = _carry_trainer(carry_dataset, distance_cache=True)
        trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        state = capture_training_state(trainer)
        target = _carry_trainer(carry_dataset, distance_cache=True)
        target.run(TrainerConfig(max_steps=2, eval_every=0))
        restore_training_state(target, state)
        cache = target.server.distance_cache
        # Only the restored carry pool's rows survive the rebuild.
        pending = [
            e for e in target.sync_policy.pending_events()
            if e.delivered and np.isfinite(e.payload).all()
        ]
        assert cache.known_rows == len(
            {row_fingerprint(e.payload) for e in pending}
        )

    def test_async_cache_runs_deterministically(self, carry_dataset):
        """Async + cache is supported and replay-deterministic.

        (Unlike lock-step mode there is no cache-on/off bit-identity claim:
        in the event-driven engine aggregation pricing feeds back into
        admission timing — a faster server aggregates earlier and admits
        different batches.  That is modelled behaviour, not drift.)
        """

        def run_once():
            trainer = build_trainer(
                model="mlp",
                model_kwargs={"input_dim": 8, "hidden": (12,), "num_classes": 3},
                dataset=carry_dataset,
                gar="bulyan",
                num_workers=15,
                declared_f=2,
                batch_size=16,
                mode="async",
                sync_policy="quorum",
                sync_kwargs={"quorum": 13, "stragglers": "carry"},
                max_version_lag=4,
                distance_cache=True,
                seed=11,
            )
            history = trainer.run(TrainerConfig(max_steps=6, eval_every=0))
            return trainer.server.parameters, history

        params_a, history_a = run_once()
        params_b, history_b = run_once()
        np.testing.assert_array_equal(params_a, params_b)
        assert history_a.distance_cache_summary() == history_b.distance_cache_summary()
        assert history_a.distance_cache_summary()["miss_pairs"] > 0
