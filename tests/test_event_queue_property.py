"""Property-based tests for the event queue's tombstone bookkeeping.

The queue keeps cancelled events in the heap as tombstones (eager removal
would be O(n) per cancel) and compacts lazily once they dominate.  That
bookkeeping has to be airtight under *any* interleaving of push / cancel /
pop / peek: a cancelled event must never dispatch, ``len()`` must always
count live events only, and the lazy compaction must keep the heap within a
constant factor of the live population.  Hypothesis drives the queue with
random operation sequences against a plain-list shadow model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.events import Event, EventQueue
from repro.exceptions import TrainingError

_times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.tuples(st.just("push_many"), st.lists(_times, min_size=0, max_size=5)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=2**32)),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("peek"), st.none()),
    ),
    max_size=150,
)


def _live_order(events):
    """The shadow model's dispatch order: live events by (time, order)."""
    return sorted(
        (e for e in events if not e.cancelled and e._popped is False),
        key=lambda e: (e.time, e.order),
    )


@settings(max_examples=120, deadline=None)
@given(ops=_operations)
def test_interleaved_push_cancel_pop_peek_never_yields_a_cancelled_event(ops):
    queue = EventQueue()
    pushed = []  # every event ever pushed, in push order

    def register(event):
        event._popped = False
        pushed.append(event)

    for name, arg in ops:
        if name == "push":
            register(queue.push(Event(time=arg, kind="test")))
        elif name == "push_many":
            for event in queue.push_many([Event(time=t, kind="test") for t in arg]):
                register(event)
        elif name == "cancel" and pushed:
            # Cancelling an already-popped or already-cancelled event must be
            # a harmless no-op, so the strategy picks from *all* events.
            pushed[arg % len(pushed)].cancel()
        elif name == "pop":
            live = _live_order(pushed)
            if not live:
                with pytest.raises(TrainingError):
                    queue.pop()
            else:
                event = queue.pop()
                assert not event.cancelled
                assert event is live[0], "pop order diverged from (time, order)"
                event._popped = True
        elif name == "peek":
            live = _live_order(pushed)
            head = queue.peek()
            if not live:
                assert head is None
                assert queue.peek_time() is None
            else:
                assert head is live[0]
                assert not head.cancelled
                assert queue.peek_time() == head.time

        # Invariants, checked after every single operation:
        live = _live_order(pushed)
        assert len(queue) == len(live), "len() must count live events only"
        assert bool(queue) == bool(live)
        assert queue.pushed == len(pushed)
        # Lazy compaction bound: tombstones may linger below the trigger
        # floor, but can never outnumber the live population beyond it.
        assert queue.tombstones <= max(
            queue.COMPACT_MIN_TOMBSTONES, len(live) + 1
        ), "tombstones escaped the compaction bound"

    # Drain what's left: every remaining live event, in order, none cancelled.
    remaining = list(queue.drain())
    expected = _live_order(pushed)
    assert remaining == expected
    assert all(not event.cancelled for event in remaining)
    assert len(queue) == 0 and queue.peek() is None


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(_times, min_size=1, max_size=60),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=60),
    seed=st.integers(0, 2**31),
)
def test_mass_cancellation_compacts_the_heap(times, cancel_mask, seed):
    """Cancelling any subset leaves a heap bounded by the live population."""
    queue = EventQueue()
    events = queue.push_many([Event(time=t, kind="test") for t in times])
    cancelled = set()
    for i, event in enumerate(events):
        if cancel_mask[i % len(cancel_mask)]:
            event.cancel()
            cancelled.add(id(event))
    live = [e for e in events if id(e) not in cancelled]
    assert len(queue) == len(live)
    drained = list(queue.drain())
    assert drained == sorted(live, key=lambda e: (e.time, e.order))
    assert queue.tombstones == 0 or queue.peek() is None


@settings(max_examples=100, deadline=None)
@given(
    rounds=st.lists(
        st.tuples(
            st.lists(_times, min_size=0, max_size=30),  # push_many batch
            st.lists(st.integers(0, 2**32), max_size=30),  # cancel picks
            st.integers(0, 8),  # pops
        ),
        min_size=2,
        max_size=10,
    )
)
def test_cancel_push_many_interleavings_preserve_order_across_compaction(rounds):
    """Pop order survives lazy compactions triggered mid-sequence.

    The batched async drain leans on exactly this: it cancels elided link
    events and re-inserts follow-ups via ``push_many``, trusting that a
    compaction firing between the two leaves the (time, order) pop sequence
    untouched.  The round sizes here (up to 30 pushes / 30 cancels) push
    tombstone counts across ``COMPACT_MIN_TOMBSTONES`` routinely, so many
    examples exercise the boundary in both directions.
    """
    queue = EventQueue()
    pushed = []
    for times, cancels, pops in rounds:
        for event in queue.push_many([Event(time=t, kind="test") for t in times]):
            event._popped = False
            pushed.append(event)
        for pick in cancels:
            if pushed:
                pushed[pick % len(pushed)].cancel()
        for _ in range(pops):
            live = _live_order(pushed)
            if not live:
                break
            event = queue.pop()
            assert event is live[0], "pop order diverged after cancel/push_many"
            event._popped = True
        live = _live_order(pushed)
        assert len(queue) == len(live)
        assert queue.tombstones <= max(queue.COMPACT_MIN_TOMBSTONES, len(live) + 1)
    assert list(queue.drain()) == _live_order(pushed)


def test_compaction_fires_at_the_boundary_and_preserves_order():
    """Engineered crossing: one cancel trips compaction, order is unchanged.

    ``_note_cancel`` compacts once ``tombstones > COMPACT_MIN_TOMBSTONES``
    and tombstones outnumber half the heap.  With 20 pushed events, the
    17th cancel is the first to satisfy both — the heap must shrink to the
    3 live events on the spot, and a subsequent ``push_many`` of
    earlier-timed events must still pop first.
    """
    queue = EventQueue()
    floor = queue.COMPACT_MIN_TOMBSTONES
    events = queue.push_many(
        [Event(time=10.0 + i, kind="test") for i in range(floor + 4)]
    )
    for event in events[: floor]:
        event.cancel()
    assert queue.tombstones == floor  # at the floor: not yet compacted
    events[floor].cancel()  # trips both conditions
    assert queue.tombstones == 0, "compaction should have fired"
    assert len(queue) == 3
    early = queue.push_many([Event(time=0.5, kind="test"), Event(time=0.25, kind="test")])
    drained = list(queue.drain())
    assert drained == [early[1], early[0]] + list(events[floor + 1 :])
