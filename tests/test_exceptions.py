"""Exception hierarchy tests."""

import pytest

from repro.exceptions import (
    AggregationError,
    ConfigurationError,
    ExperimentError,
    NetworkError,
    ReproError,
    ResilienceConditionError,
    TrainingError,
)


def test_all_exceptions_derive_from_repro_error():
    for exc_type in (
        ConfigurationError,
        ResilienceConditionError,
        AggregationError,
        NetworkError,
        TrainingError,
        ExperimentError,
    ):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(ConfigurationError, ValueError)


def test_resilience_error_is_configuration_error():
    assert issubclass(ResilienceConditionError, ConfigurationError)


def test_runtime_style_errors_are_runtime_errors():
    for exc_type in (AggregationError, NetworkError, TrainingError, ExperimentError):
        assert issubclass(exc_type, RuntimeError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise ResilienceConditionError("nope")
    with pytest.raises(ReproError):
        raise TrainingError("nope")
