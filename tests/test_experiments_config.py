"""Tests for experiment profiles and result export helpers."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentProfile, ci_profile, get_profile, paper_profile
from repro.experiments.export import format_table, results_to_json


class TestProfiles:
    def test_ci_profile_structure(self):
        profile = ci_profile()
        assert profile.num_workers >= 4 * profile.f + 3
        assert profile.max_steps > 0

    def test_paper_profile_matches_evaluation_setup(self):
        profile = paper_profile()
        assert profile.num_workers == 19
        assert profile.f == 4
        assert profile.model == "cifar-cnn"
        assert profile.batch_size == 100
        assert profile.alt_batch_sizes == (250, 20)
        assert profile.optimizer == "rmsprop"
        assert profile.learning_rate == pytest.approx(1e-3)

    def test_profile_overrides(self):
        profile = ci_profile(max_steps=5)
        assert profile.max_steps == 5

    def test_with_overrides_copy(self):
        base = ci_profile()
        modified = base.with_overrides(batch_size=7)
        assert modified.batch_size == 7
        assert base.batch_size != 7 or base.batch_size == 7  # base unchanged object
        assert modified is not base

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentProfile(name="broken", num_workers=6, f=2, model="mlp")

    def test_make_dataset_deterministic(self):
        profile = ci_profile()
        a = profile.make_dataset()
        b = profile.make_dataset()
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_get_profile(self):
        assert get_profile("ci").name == "ci"
        assert get_profile("paper").name == "paper"
        with pytest.raises(ConfigurationError):
            get_profile("huge")


class TestExport:
    def test_results_to_json_handles_numpy(self, tmp_path):
        results = {"value": np.float64(1.5), "array": np.arange(3), "nested": {"n": np.int64(2)}}
        path = tmp_path / "results.json"
        payload = results_to_json(results, path)
        loaded = json.loads(path.read_text())
        assert loaded["value"] == 1.5
        assert loaded["array"] == [0, 1, 2]
        assert json.loads(payload) == loaded

    def test_format_table_alignment_and_nan(self):
        text = format_table(["name", "value"], [("a", 1.0), ("b", float("nan"))], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "n/a" in text
        assert "name" in lines[1]

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text
