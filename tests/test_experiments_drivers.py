"""Smoke + shape tests for the per-figure experiment drivers (CI profile, short runs)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    byzantine_attacks,
    ci_profile,
    corrupted_data,
    cost_analysis,
    dropped_packets,
    impact_f,
    latency,
    overhead,
    scalability,
    table1,
)
from repro.experiments.runners import SYSTEM_GARS, run_system


@pytest.fixture(scope="module")
def fast_profile():
    """A very short CI profile so every driver runs in a few seconds."""
    return ci_profile(max_steps=15, eval_every=5)


@pytest.fixture(scope="module")
def fast_dataset(fast_profile):
    return fast_profile.make_dataset()


class TestRunners:
    def test_known_systems(self):
        assert {"tf", "average", "median", "multi-krum", "bulyan"} <= set(SYSTEM_GARS)

    def test_unknown_system_rejected(self, fast_profile, fast_dataset):
        with pytest.raises(ConfigurationError):
            run_system(fast_profile, "paxos", fast_dataset)

    @pytest.mark.parametrize("system", ["tf", "multi-krum", "bulyan", "draco"])
    def test_each_system_trains(self, fast_profile, fast_dataset, system):
        history = run_system(fast_profile, system, fast_dataset, max_steps=5, eval_every=5)
        assert history.num_updates == 5
        assert history.total_time > 0


class TestTable1:
    def test_parameter_count_matches_paper(self):
        results = table1.run_table1()
        assert results["total_parameters"] == 1_756_426
        assert abs(results["total_parameters"] - results["paper_reported_parameters"]) < 2e4
        assert len(results["layers"]) == 12

    def test_format(self):
        text = table1.format_results(table1.run_table1())
        assert "Table 1" in text and "TOTAL" in text


class TestOverhead:
    def test_runs_and_summarises(self, fast_profile):
        results = overhead.run_overhead(
            fast_profile, systems=("tf", "multi-krum"), batch_sizes=[16]
        )
        assert set(results["panels"]) == {16}
        assert len(results["panels"][16]) == 2
        rows = overhead.overhead_summary(results)
        tf_row = next(r for r in rows if r["system"] == "tf")
        mk_row = next(r for r in rows if r["system"] == "multi-krum")
        assert tf_row["overhead_vs_tf"] == pytest.approx(0.0)
        assert np.isfinite(mk_row["overhead_vs_tf"])
        assert "Figure 3" in overhead.format_results(results)


class TestLatency:
    def test_breakdown_ordering(self, fast_profile):
        results = latency.run_latency_breakdown(fast_profile, max_steps=5)
        shares = {b["system"]: b["aggregation_share"] for b in results["breakdowns"]}
        # Robust aggregation costs more: Bulyan > Multi-Krum > Median > TF.
        assert shares["bulyan"] > shares["multi-krum"] > shares["median"] > shares["tf"]
        assert "Figure 4" in latency.format_results(results)


class TestScalability:
    def test_throughput_decreases_with_workers_for_robust_gar(self, fast_profile):
        results = scalability.run_throughput_sweep(
            fast_profile,
            worker_counts=(5, 11),
            curves=(("average", None), ("multi-krum", 1)),
            steps_per_point=3,
        )
        mk_curve = dict(scalability.throughput_curve(results, "multi-krum", 1))
        avg_curve = dict(scalability.throughput_curve(results, "average", None))
        # At the larger cluster, Multi-Krum's throughput lags averaging's.
        assert mk_curve[11] < avg_curve[11]
        assert "Figure 5" in scalability.format_results(results)

    def test_draco_order_of_magnitude_slower(self, fast_profile):
        results = scalability.run_throughput_sweep(
            fast_profile,
            worker_counts=(11,),
            curves=(("average", None), ("draco", 2)),
            steps_per_point=3,
        )
        avg = scalability.throughput_curve(results, "average", None)[0][1]
        draco = scalability.throughput_curve(results, "draco", 2)[0][1]
        assert draco < avg / 5

    def test_invalid_steps(self, fast_profile):
        with pytest.raises(ConfigurationError):
            scalability.run_throughput_sweep(fast_profile, steps_per_point=0)


class TestImpactF:
    def test_runs_all_curves(self, fast_profile):
        results = impact_f.run_impact_of_f(
            fast_profile, curves=(("multi-krum", 1), ("bulyan", 2)), batch_sizes=[16]
        )
        assert len(results["summaries"]) == 2
        assert "Figure 6" in impact_f.format_results(results)

    def test_bulyan_faster_with_larger_f(self, fast_profile, fast_dataset):
        """Fewer Bulyan iterations with larger declared f -> higher throughput."""
        slow = run_system(fast_profile, "bulyan", fast_dataset, f=1, max_steps=5, eval_every=0)
        fast = run_system(fast_profile, "bulyan", fast_dataset, f=2, max_steps=5, eval_every=0)
        assert fast.throughput() > slow.throughput()


class TestCorruptedData:
    def test_aggregathor_beats_poisoned_tf(self, fast_profile):
        profile = fast_profile.with_overrides(max_steps=40, eval_every=10)
        results = corrupted_data.run_corrupted_data(profile)
        summaries = {s["system"]: s for s in results["summaries"]}
        assert summaries["aggregathor"]["final_accuracy"] >= summaries["tf"]["final_accuracy"]
        assert "Figure 7" in corrupted_data.format_results(results)


class TestDroppedPackets:
    def test_clean_panel_all_converge(self, fast_profile):
        results = dropped_packets.run_dropped_packets_clean(fast_profile)
        for summary in results["summaries"]:
            assert not summary["diverged"]
        assert "Figure 8" in dropped_packets.format_results(results)

    def test_lossy_panel_aggregathor_faster_than_tcp(self, fast_profile):
        results = dropped_packets.run_dropped_packets_lossy(fast_profile, drop_rate=0.10)
        summaries = {s["system"]: s for s in results["summaries"]}
        # UDP transport is faster than TCP under loss for the same number of steps.
        assert summaries["aggregathor-udp"]["total_time"] < summaries["tf-grpc"]["total_time"]
        speed = dropped_packets.speedup_to_accuracy(results, 0.3)
        assert speed["speedup_aggregathor_vs_tf_grpc"] > 1.0


class TestByzantineAttackGrid:
    def test_grid_shapes_and_robustness(self, fast_profile):
        profile = fast_profile.with_overrides(max_steps=25, eval_every=5)
        results = byzantine_attacks.run_attack_grid(
            profile,
            attacks=(("reversed-gradient", {"scale": 100.0}),),
            defences=("average", "multi-krum"),
        )
        cells = {(c["defence"], c["attack"]): c for c in results["cells"]}
        assert len(cells) == 2
        mk = cells[("multi-krum", "reversed-gradient")]
        avg = cells[("average", "reversed-gradient")]
        assert mk["final_accuracy"] > avg["final_accuracy"]
        assert results["attack_cost_lower_bound_ops"] > 0
        assert "defence" in byzantine_attacks.format_results(results)


class TestCostAnalysis:
    def test_scaling_exponents(self):
        results = cost_analysis.run_cost_analysis(
            f=1, dims=(4_000, 32_000, 256_000), worker_counts=(7, 11, 15), repeats=2
        )
        d_slope = cost_analysis.scaling_exponent(results, "multi-krum", "d")
        assert 0.7 < d_slope < 1.5  # linear in d once d dominates the constant costs
        assert results["analytic_slowdowns"]["weak (Multi-Krum)"] > results[
            "analytic_slowdowns"
        ]["strong (AggregaThor)"]
        assert "Cost analysis" in cost_analysis.format_results(results)

    def test_invalid_axis(self):
        results = cost_analysis.run_cost_analysis(f=1, dims=(500, 1000), worker_counts=(7,), repeats=1)
        with pytest.raises(ConfigurationError):
            cost_analysis.scaling_exponent(results, "multi-krum", "q")


class TestBroadcastScaling:
    def test_sweep_reports_downlink_savings(self, fast_profile):
        from repro.experiments import broadcast_scaling

        results = broadcast_scaling.run_broadcast_scaling(
            fast_profile,
            link_profile="wan:3x1mbit",
            max_steps=6,
            lineup=(
                ("raw", None, {}),
                ("delta-top-k/8", "top-k", {"k_fraction": 1 / 8}),
            ),
        )
        by_label = {s["label"]: s for s in results["summaries"]}
        assert not any(s["diverged"] for s in results["summaries"])
        assert (
            by_label["delta-top-k/8"]["downlink_bytes"]
            < by_label["raw"]["downlink_bytes"]
        )
        assert by_label["raw"]["region_queueing"]  # WAN contention recorded
        text = broadcast_scaling.format_results(results)
        assert "Delta broadcasts" in text and "raw" in text

    def test_smoke_entry_point(self, capsys):
        from repro.experiments import broadcast_scaling

        assert broadcast_scaling.main(["--smoke"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_determinism_entry_point(self, capsys):
        from repro.experiments import broadcast_scaling

        assert broadcast_scaling.main(["--determinism-check"]) == 0
        assert "identical" in capsys.readouterr().out
