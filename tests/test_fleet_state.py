"""Structure-of-arrays fleet state and the batched fleet compute kernel."""

import numpy as np
import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.cost_model import CostModel, StragglerModel
from repro.cluster.fleet import FleetComputeKernel, FleetState, fleet_computable
from repro.cluster.trainer import TrainerConfig
from repro.cluster.worker import HonestWorker
from repro.data.datasets import gaussian_blobs, synthetic_cifar
from repro.data.sampler import MiniBatchSampler
from repro.exceptions import ConfigurationError
from repro.nn.models.registry import make_model


def _make_workers(n=5, *, batch_size=4, dim=6, num_classes=3, speeds=None):
    data = gaussian_blobs(num_train=60, num_test=10, num_classes=num_classes,
                          dim=dim, rng=0)
    workers = []
    for i in range(n):
        sampler = MiniBatchSampler(data.train_x, data.train_y, batch_size, rng=100 + i)
        model = make_model("logistic", input_dim=dim, num_classes=num_classes, rng=7)
        speed = (speeds or {}).get(i, 1.0)
        workers.append(HonestWorker(i, model, sampler, speed=speed))
    return workers


class TestFleetState:
    def test_arrays_mirror_worker_order(self):
        workers = _make_workers(4, speeds={1: 2.0, 3: 0.5})
        gflops = {w.worker_id: 1.0 + w.worker_id for w in workers}
        fleet = FleetState(workers, worker_gflops=gflops)
        assert fleet.num_workers == 4
        np.testing.assert_array_equal(fleet.worker_ids, [0, 1, 2, 3])
        np.testing.assert_array_equal(fleet.speeds, [1.0, 2.0, 1.0, 0.5])
        # Effective throughput folds the speed multiplier into the hardware draw.
        np.testing.assert_array_equal(
            fleet.gflops, np.array([1.0, 2.0, 3.0, 4.0]) * fleet.speeds
        )
        assert fleet.row_of == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            FleetState([], worker_gflops={})

    def test_compute_times_match_scalar_cost_model_bitwise(self):
        workers = _make_workers(5, speeds={2: 3.0})
        cost = CostModel()
        gflops = {w.worker_id: 0.5 + 0.1 * w.worker_id for w in workers}
        fleet = FleetState(workers, worker_gflops=gflops)
        fps = workers[0].model.flops_per_sample()
        times = fleet.compute_times(cost, fps)
        for i, worker in enumerate(workers):
            expected = cost.gradient_compute_time(
                worker.model.num_parameters,
                worker.batch_size,
                gflops=gflops[worker.worker_id] * worker.speed,
                flops_per_sample=fps,
            )
            assert times[i] == expected  # bitwise, not approx

    def test_compute_times_reject_unmeasured_flops(self):
        fleet = FleetState(_make_workers(2), worker_gflops={0: 1.0, 1: 1.0})
        with pytest.raises(ConfigurationError):
            fleet.compute_times(CostModel(), 0.0)

    def test_straggler_draws_update_the_fleet(self):
        fleet = FleetState(_make_workers(3), worker_gflops={i: 1.0 for i in range(3)})
        np.testing.assert_array_equal(
            fleet.sample_slowdowns(None, np.random.default_rng(0)), np.ones(3)
        )
        model = StragglerModel("pareto")
        drawn = fleet.sample_slowdowns(model, np.random.default_rng(5))
        np.testing.assert_array_equal(drawn, fleet.slowdowns)
        np.testing.assert_array_equal(
            drawn, model.sample(3, np.random.default_rng(5))
        )

    def test_byte_accounting_accumulates(self):
        fleet = FleetState(_make_workers(3), worker_gflops={i: 1.0 for i in range(3)})
        fleet.account_bytes(sent=np.array([1.0, 2.0, 3.0]))
        fleet.account_bytes(sent=np.array([1.0, 1.0, 1.0]),
                            received=np.array([4.0, 4.0, 4.0]))
        np.testing.assert_array_equal(fleet.bytes_sent, [2.0, 3.0, 4.0])
        np.testing.assert_array_equal(fleet.bytes_received, [4.0, 4.0, 4.0])

    def test_error_feedback_rows_alias_the_canonical_dict(self):
        fleet = FleetState(_make_workers(3), worker_gflops={i: 1.0 for i in range(3)})
        memory = {0: np.arange(4.0), 2: np.full(4, 7.0)}
        matrix = fleet.bind_error_feedback(memory, dim=4)
        np.testing.assert_array_equal(matrix[0], np.arange(4.0))
        np.testing.assert_array_equal(matrix[2], np.full(4, 7.0))
        np.testing.assert_array_equal(fleet.ef_has_memory, [True, False, True])
        # The dict entries were rebound to row views: a vectorised write to
        # the matrix is immediately visible through the dict.
        matrix[0, 0] = 42.0
        assert memory[0][0] == 42.0
        assert memory[0].base is matrix

    def test_store_residuals_exposes_every_row(self):
        fleet = FleetState(_make_workers(2), worker_gflops={0: 1.0, 1: 1.0})
        memory = {}
        fleet.bind_error_feedback(memory, dim=3)
        residuals = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        fleet.store_residuals(memory, residuals)
        np.testing.assert_array_equal(memory[0], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(memory[1], [4.0, 5.0, 6.0])
        assert fleet.ef_has_memory.all()

    def test_checkpoint_restore_is_reabsorbed(self):
        # A restore swaps fresh arrays into the dict; the next bind must
        # copy them back into the matrix and re-alias the entries.
        fleet = FleetState(_make_workers(2), worker_gflops={0: 1.0, 1: 1.0})
        memory = {}
        fleet.bind_error_feedback(memory, dim=3)
        fleet.store_residuals(memory, np.zeros((2, 3)))
        memory[1] = np.array([9.0, 8.0, 7.0])  # the "restored" array
        matrix = fleet.bind_error_feedback(memory, dim=3)
        np.testing.assert_array_equal(matrix[1], [9.0, 8.0, 7.0])
        assert memory[1].base is matrix

    def test_bind_rejects_wrong_sized_memory(self):
        fleet = FleetState(_make_workers(1), worker_gflops={0: 1.0})
        with pytest.raises(ConfigurationError):
            fleet.bind_error_feedback({0: np.zeros(5)}, dim=3)


class TestFleetComputeKernel:
    def test_fleet_computable_gates_on_architecture(self):
        assert fleet_computable(make_model("logistic", input_dim=4, num_classes=3, rng=0))
        assert fleet_computable(
            make_model("mlp", input_dim=4, hidden=(8,), num_classes=3, rng=0)
        )
        # Conv/residual/pooling models batch too since the im2col kernel.
        assert fleet_computable(
            make_model(
                "resnet-like", image_size=8, stage_channels=(4,),
                blocks_per_stage=1, num_classes=3, rng=0,
            )
        )
        # Dropout draws an RNG mask per forward, which would make one
        # stacked pass diverge from per-worker passes — gated out.
        assert not fleet_computable(
            make_model(
                "mlp", input_dim=4, hidden=(8,), num_classes=3, dropout=0.5, rng=0
            )
        )

    def test_rows_match_per_worker_backprop(self):
        workers = _make_workers(6, batch_size=5)
        kernel = FleetComputeKernel(
            make_model("logistic", input_dim=6, num_classes=3, rng=7)
        )
        parameters = workers[0].model.get_parameters()
        batches = [w.sampler.sample() for w in workers]
        losses, grads = kernel.compute(
            parameters, [b[0] for b in batches], [b[1] for b in batches]
        )
        assert losses.shape == (6,) and grads.shape == (6, parameters.size)
        for i, worker in enumerate(workers):
            worker.model.set_parameters(parameters)
            loss, grad = worker.model.loss_and_gradient(*batches[i])
            assert losses[i] == pytest.approx(loss, rel=1e-12)
            np.testing.assert_allclose(grads[i], grad, rtol=1e-10, atol=1e-12)

    def test_prestacked_arrays_match_list_of_batches(self):
        workers = _make_workers(4, batch_size=3)
        kernel = FleetComputeKernel(
            make_model("logistic", input_dim=6, num_classes=3, rng=7)
        )
        parameters = workers[0].model.get_parameters()
        shared = workers[0].sampler
        indices = np.stack([w.sampler.sample_indices() for w in workers])
        stacked_losses, stacked_grads = kernel.compute(
            parameters, shared.features[indices], shared.labels[indices]
        )
        list_losses, list_grads = kernel.compute(
            parameters,
            [shared.features[row] for row in indices],
            [shared.labels[row] for row in indices],
        )
        np.testing.assert_array_equal(stacked_losses, list_losses)
        np.testing.assert_array_equal(stacked_grads, list_grads)

    def test_rejects_unsupported_model(self):
        dropout_mlp = make_model(
            "mlp", input_dim=4, hidden=(8,), num_classes=3, dropout=0.5, rng=0
        )
        with pytest.raises(ConfigurationError):
            FleetComputeKernel(dropout_mlp)

    def test_rejects_mismatched_batches(self):
        kernel = FleetComputeKernel(
            make_model("logistic", input_dim=6, num_classes=3, rng=7)
        )
        parameters = kernel.model.get_parameters()
        x = np.zeros((3, 6))
        with pytest.raises(ConfigurationError):
            kernel.compute(parameters, [x, np.zeros((2, 6))], [np.zeros(3), np.zeros(2)])
        with pytest.raises(ConfigurationError):
            kernel.compute(parameters, [], [])


class TestFleetTrainerMode:
    def _dataset(self):
        return gaussian_blobs(num_train=400, num_test=100, num_classes=4, dim=8, rng=1)

    def _build(self, **overrides):
        kwargs = dict(
            model="mlp",
            model_kwargs={"input_dim": 8, "hidden": (12,), "num_classes": 4},
            dataset=self._dataset(),
            gar="median",
            num_workers=12,
            num_byzantine=2,
            attack="sign-flip",
            batch_size=8,
            learning_rate=0.05,
            seed=13,
        )
        kwargs.update(overrides)
        return build_trainer(**kwargs)

    def test_fleet_mode_is_deterministic(self):
        histories = []
        for _ in range(2):
            trainer = self._build(compute_mode="fleet")
            histories.append(trainer.run(TrainerConfig(max_steps=5, eval_every=0)))
        assert histories[0].to_dict() == histories[1].to_dict()

    def test_fleet_mode_tracks_the_exact_trajectory(self):
        # Statistically equivalent, not bitwise: same deployment, the two
        # modes must land at comparable losses.
        exact = self._build(compute_mode="exact")
        fleet = self._build(compute_mode="fleet")
        config = TrainerConfig(max_steps=20, eval_every=0)
        h_exact = exact.run(config)
        h_fleet = fleet.run(config)
        final_exact = h_exact.steps[-1].mean_loss
        final_fleet = h_fleet.steps[-1].mean_loss
        assert np.isfinite(final_fleet)
        assert final_fleet < h_fleet.steps[0].mean_loss  # it learns
        assert final_fleet == pytest.approx(final_exact, rel=0.25)

    def test_fleet_mode_falls_back_for_unsupported_models(self):
        trainer = self._build(
            model="mlp",
            model_kwargs={
                "input_dim": 10, "hidden": (8,), "num_classes": 4, "dropout": 0.5,
            },
            dataset=gaussian_blobs(num_train=48, num_classes=4, dim=10, rng=1),
            compute_mode="fleet",
            num_workers=6,
            num_byzantine=0,
            attack=None,
            batch_size=4,
        )
        assert trainer._fleet_kernel is None  # gated out, not an error
        history = trainer.run(TrainerConfig(max_steps=1, eval_every=0))
        assert len(history.steps) == 1
