"""Tests for plain and selective averaging."""

import numpy as np
import pytest

from repro.core import Average, SelectiveAverage
from repro.exceptions import AggregationError


class TestAverage:
    def test_matches_numpy_mean(self, honest_gradients):
        np.testing.assert_allclose(
            Average().aggregate(honest_gradients), honest_gradients.mean(axis=0)
        )

    def test_single_gradient_identity(self):
        gradient = np.arange(5, dtype=float)
        np.testing.assert_allclose(Average().aggregate([gradient]), gradient)

    def test_not_byzantine_resilient(self, honest_gradients, true_gradient):
        # One enormous outlier drags the mean arbitrarily far.
        poisoned = np.vstack([honest_gradients, 1e6 * np.ones(honest_gradients.shape[1])])
        aggregated = Average().aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) > 1e4

    def test_resilience_metadata(self):
        assert Average.resilience == "none"
        assert Average.minimum_workers(3) == 4

    def test_empty_input_raises(self):
        with pytest.raises(AggregationError):
            Average().aggregate([])


class TestSelectiveAverage:
    def test_equals_average_when_all_finite(self, honest_gradients):
        np.testing.assert_allclose(
            SelectiveAverage().aggregate(honest_gradients),
            Average().aggregate(honest_gradients),
        )

    def test_ignores_nan_coordinates(self):
        gradients = np.array([[1.0, np.nan, 3.0], [3.0, 4.0, np.nan], [5.0, 6.0, 9.0]])
        aggregated = SelectiveAverage().aggregate(gradients)
        np.testing.assert_allclose(aggregated, [3.0, 5.0, 6.0])

    def test_coordinate_lost_everywhere_falls_back_to_zero(self):
        gradients = np.array([[np.nan, 1.0], [np.nan, 3.0]])
        aggregated = SelectiveAverage().aggregate(gradients)
        np.testing.assert_allclose(aggregated, [0.0, 2.0])

    def test_all_nan_raises(self):
        with pytest.raises(AggregationError):
            SelectiveAverage().aggregate(np.full((3, 4), np.nan))

    def test_infinities_are_ignored_like_nan(self):
        gradients = np.array([[np.inf, 1.0], [2.0, 1.0]])
        aggregated = SelectiveAverage().aggregate(gradients)
        np.testing.assert_allclose(aggregated, [2.0, 1.0])

    def test_supports_non_finite_flag(self):
        assert SelectiveAverage.supports_non_finite is True
        assert Average.supports_non_finite is False
