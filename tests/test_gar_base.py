"""Tests for the GAR base class, registry and factory."""

import numpy as np
import pytest

from repro.core import GAR_REGISTRY, available_gars, make_gar
from repro.core.base import AggregationResult, GradientAggregationRule, register_gar
from repro.exceptions import AggregationError, ConfigurationError, ResilienceConditionError


EXPECTED_GARS = {
    "average",
    "selective-average",
    "median",
    "trimmed-mean",
    "krum",
    "multi-krum",
    "bulyan",
    "geometric-median",
    "meamed",
    "phocas",
}


def test_registry_contains_all_builtin_rules():
    assert EXPECTED_GARS.issubset(set(available_gars()))


def test_make_gar_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown GAR"):
        make_gar("does-not-exist")


def test_make_gar_passes_kwargs():
    gar = make_gar("multi-krum", f=3)
    assert gar.f == 3


def test_registry_names_match_class_attribute():
    for name, cls in GAR_REGISTRY.items():
        assert cls.name == name


def test_resilience_levels_valid():
    for cls in GAR_REGISTRY.values():
        assert cls.resilience in ("none", "weak", "strong")


def test_negative_f_rejected():
    for name in EXPECTED_GARS:
        with pytest.raises(ConfigurationError):
            make_gar(name, f=-1)


def test_non_integer_f_rejected():
    with pytest.raises(ConfigurationError):
        make_gar("multi-krum", f=1.5)


def test_call_is_aggregate(honest_gradients):
    gar = make_gar("average")
    np.testing.assert_allclose(gar(honest_gradients), gar.aggregate(honest_gradients))


def test_register_duplicate_name_rejected():
    class Dummy(GradientAggregationRule):
        resilience = "none"

        def _aggregate(self, matrix):
            return AggregationResult(gradient=matrix.mean(axis=0))

    with pytest.raises(ConfigurationError):
        register_gar("average")(Dummy)


def test_register_invalid_resilience_rejected():
    class Bad(GradientAggregationRule):
        resilience = "super-strong"

        def _aggregate(self, matrix):
            return AggregationResult(gradient=matrix.mean(axis=0))

    with pytest.raises(ConfigurationError):
        register_gar("bad-rule-xyz")(Bad)


def test_aggregate_wrong_output_shape_detected():
    class Broken(GradientAggregationRule):
        resilience = "none"

        def _aggregate(self, matrix):
            return AggregationResult(gradient=matrix.mean(axis=0)[:-1])

    with pytest.raises(AggregationError):
        Broken().aggregate(np.ones((3, 5)))


def test_max_byzantine_inverse_of_minimum_workers():
    from repro.core import Bulyan, MultiKrum

    assert MultiKrum.max_byzantine(19) == 8
    assert MultiKrum.max_byzantine(2 * 4 + 3) == 4
    assert Bulyan.max_byzantine(19) == 4
    assert Bulyan.max_byzantine(4 * 2 + 3) == 2


def test_cardinality_check_raises_for_too_few_workers(honest_gradients):
    gar = make_gar("multi-krum", f=8)  # needs 19 workers, we provide 11
    with pytest.raises(ResilienceConditionError):
        gar.aggregate(honest_gradients)


def test_detailed_result_fields(honest_gradients):
    result = make_gar("multi-krum", f=2).aggregate_detailed(honest_gradients)
    assert isinstance(result, AggregationResult)
    assert result.gradient.shape == (honest_gradients.shape[1],)
    assert result.selected_indices is not None
    assert result.scores is not None and result.scores.shape == (honest_gradients.shape[0],)
