"""Tests for the Brute (minimum-diameter averaging) and clipping GARs."""

import numpy as np
import pytest

from repro.core import Average, Brute, CenteredClipping, MultiKrum, NormClippedMean, make_gar
from repro.exceptions import AggregationError, ConfigurationError


class TestBrute:
    def test_registered(self):
        assert isinstance(make_gar("brute", f=1), Brute)

    def test_no_byzantine_is_plain_average(self, honest_gradients):
        np.testing.assert_allclose(
            Brute(f=0).aggregate(honest_gradients), honest_gradients.mean(axis=0)
        )

    def test_excludes_the_outlier(self, honest_gradients, true_gradient):
        poisoned = np.vstack([honest_gradients, 1e5 * np.ones(20)])
        result = Brute(f=1).aggregate_detailed(poisoned)
        assert poisoned.shape[0] - 1 not in result.selected_indices.tolist()
        assert np.linalg.norm(result.gradient - true_gradient) < 0.5

    def test_selects_the_tightest_cluster(self):
        # A tight cluster of 4 identical vectors plus 3 spread-out vectors; with
        # f=3 (subset size 4) the rule must return the tight cluster's value.
        tight = np.zeros((4, 4))
        loose = np.ones((3, 4)) * 5 + np.arange(3)[:, None]
        matrix = np.vstack([tight, loose])
        result = Brute(f=3).aggregate_detailed(matrix)
        np.testing.assert_allclose(result.gradient, 0.0)
        assert sorted(result.selected_indices.tolist()) == [0, 1, 2, 3]

    def test_nan_rows_never_selected(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, np.full((1, 20), np.nan)])
        result = Brute(f=1).aggregate_detailed(poisoned)
        assert np.isfinite(result.gradient).all()

    def test_worker_cap(self, rng):
        gar = Brute(f=1, max_workers=5)
        with pytest.raises(AggregationError):
            gar.aggregate(rng.standard_normal((6, 3)))

    def test_agrees_with_multikrum_on_clean_clustered_data(self, rng):
        # With a single far outlier, both rules should return something close
        # to the honest mean (sanity cross-check between two selection rules).
        honest = rng.standard_normal((8, 10)) * 0.01 + 1.0
        poisoned = np.vstack([honest, 50 * np.ones(10)])
        brute_out = Brute(f=1).aggregate(poisoned)
        mk_out = MultiKrum(f=1).aggregate(poisoned)
        assert np.linalg.norm(brute_out - mk_out) < 0.1

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            Brute(f=1, max_workers=0)


class TestCenteredClipping:
    def test_clean_data_close_to_mean(self, honest_gradients):
        aggregated = CenteredClipping(f=2).aggregate(honest_gradients)
        assert np.linalg.norm(aggregated - honest_gradients.mean(axis=0)) < 0.2

    def test_resists_large_outliers(self, honest_gradients, true_gradient):
        poisoned = np.vstack([honest_gradients, 1e6 * np.ones((2, 20))])
        aggregated = CenteredClipping(f=2).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_reference_carries_across_calls(self, honest_gradients):
        gar = CenteredClipping(f=2)
        first = gar.aggregate(honest_gradients)
        assert gar._reference is not None
        gar.reset()
        assert gar._reference is None
        np.testing.assert_allclose(gar.aggregate(honest_gradients), first)

    def test_ignores_nan_rows(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, np.full((1, 20), np.nan)])
        assert np.isfinite(CenteredClipping(f=1).aggregate(poisoned)).all()

    def test_explicit_tau(self, honest_gradients):
        aggregated = CenteredClipping(f=2, tau=10.0).aggregate(honest_gradients)
        assert np.isfinite(aggregated).all()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CenteredClipping(tau=0.0)
        with pytest.raises(ConfigurationError):
            CenteredClipping(iterations=0)


class TestNormClippedMean:
    def test_clean_data_close_to_mean(self, honest_gradients):
        aggregated = NormClippedMean().aggregate(honest_gradients)
        mean = honest_gradients.mean(axis=0)
        assert np.linalg.norm(aggregated - mean) < 0.5 * np.linalg.norm(mean) + 0.5

    def test_magnitude_attack_neutralised(self, honest_gradients, true_gradient):
        poisoned = np.vstack([honest_gradients, 1e6 * true_gradient[None, :]])
        aggregated = NormClippedMean().aggregate(poisoned)
        # The outlier's contribution is clipped to the median norm: bounded influence.
        assert np.linalg.norm(aggregated) < 2 * np.linalg.norm(true_gradient)

    def test_direction_attack_not_filtered(self, honest_gradients):
        # Norm clipping is not Byzantine resilient: a within-norm adversary biases it.
        mean = honest_gradients.mean(axis=0)
        poisoned = np.vstack([honest_gradients, np.tile(-mean, (11, 1))])
        aggregated = NormClippedMean().aggregate(poisoned)
        assert np.linalg.norm(aggregated) < 0.6 * np.linalg.norm(mean)
