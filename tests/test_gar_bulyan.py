"""Tests for Bulyan (optimised and reference implementations)."""

import numpy as np
import pytest

from repro.core import Bulyan, CoordinateWiseMedian, MultiKrum, NaiveBulyan
from repro.exceptions import AggregationError, ResilienceConditionError


@pytest.fixture
def bulyan_gradients(rng):
    """19 honest gradients (enough for f=4) around a known true gradient."""
    true_gradient = np.linspace(-1.0, 1.0, 30)
    return true_gradient[None, :] + 0.1 * rng.standard_normal((19, 30)), true_gradient


class TestBulyan:
    def test_requires_4f_plus_3(self):
        assert Bulyan.minimum_workers(4) == 19
        with pytest.raises(ResilienceConditionError):
            Bulyan(f=4).aggregate(np.ones((18, 5)))

    def test_matches_naive_reference(self, rng):
        for n, f in [(7, 1), (11, 2), (19, 4)]:
            matrix = rng.standard_normal((n, 25))
            np.testing.assert_allclose(
                Bulyan(f=f).aggregate(matrix), NaiveBulyan(f=f).aggregate(matrix), atol=1e-12
            )

    def test_close_to_true_gradient_without_byzantine(self, bulyan_gradients):
        gradients, true_gradient = bulyan_gradients
        aggregated = Bulyan(f=4).aggregate(gradients)
        assert np.linalg.norm(aggregated - true_gradient) < 0.5

    def test_resists_f_large_outliers(self, bulyan_gradients):
        gradients, true_gradient = bulyan_gradients
        byzantine = 1e4 * np.ones((4, 30))
        poisoned = np.vstack([gradients[:15], byzantine])  # n=19, f=4 actual
        aggregated = Bulyan(f=4).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_byzantine_rows_never_selected(self, bulyan_gradients):
        gradients, _ = bulyan_gradients
        byzantine = 1e4 * np.ones((4, 30))
        poisoned = np.vstack([gradients[:15], byzantine])
        result = Bulyan(f=4).aggregate_detailed(poisoned)
        assert not (set(result.selected_indices.tolist()) & {15, 16, 17, 18})

    def test_selection_set_size_is_theta(self, bulyan_gradients):
        gradients, _ = bulyan_gradients
        result = Bulyan(f=4).aggregate_detailed(gradients)
        assert result.selected_indices.shape == (19 - 2 * 4,)

    def test_selection_indices_unique(self, bulyan_gradients):
        gradients, _ = bulyan_gradients
        result = Bulyan(f=4).aggregate_detailed(gradients)
        indices = result.selected_indices.tolist()
        assert len(indices) == len(set(indices))

    def test_nan_submissions_tolerated(self, bulyan_gradients):
        gradients, _ = bulyan_gradients
        poisoned = np.vstack([gradients[:15], np.full((4, 30), np.nan)])
        aggregated = Bulyan(f=4).aggregate(poisoned)
        assert np.isfinite(aggregated).all()

    def test_all_identical_inputs(self):
        matrix = np.tile(np.arange(5, dtype=float), (7, 1))
        np.testing.assert_allclose(Bulyan(f=1).aggregate(matrix), np.arange(5, dtype=float))

    def test_coordinates_within_selected_range(self, bulyan_gradients):
        gradients, _ = bulyan_gradients
        result = Bulyan(f=4).aggregate_detailed(gradients)
        selected = gradients[result.selected_indices]
        assert (result.gradient <= selected.max(axis=0) + 1e-12).all()
        assert (result.gradient >= selected.min(axis=0) - 1e-12).all()

    def test_f_zero_behaves_like_trimmed_average(self, rng):
        # With f=0, theta = n and beta = n: Bulyan degenerates to plain averaging.
        matrix = rng.standard_normal((6, 8))
        np.testing.assert_allclose(Bulyan(f=0).aggregate(matrix), matrix.mean(axis=0), atol=1e-12)

    def test_resilience_metadata(self):
        assert Bulyan.resilience == "strong"
        assert MultiKrum.resilience == "weak"
        assert CoordinateWiseMedian.resilience == "weak"

    def test_little_is_enough_bounded_per_coordinate(self, bulyan_gradients, rng):
        # A dimensional-leeway attack: Byzantine gradients stay within ~1.5 std
        # of the honest mean per coordinate.  Bulyan's output must stay within
        # the honest per-coordinate envelope (strong resilience property).
        gradients, _ = bulyan_gradients
        honest = gradients[:15]
        mean, std = honest.mean(axis=0), honest.std(axis=0)
        byzantine = np.tile(mean - 1.5 * std, (4, 1))
        poisoned = np.vstack([honest, byzantine])
        aggregated = Bulyan(f=4).aggregate(poisoned)
        assert (aggregated >= honest.min(axis=0) - 1e-9).all()
        assert (aggregated <= honest.max(axis=0) + 1e-9).all()
