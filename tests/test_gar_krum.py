"""Tests for Krum and Multi-Krum."""

import numpy as np
import pytest

from repro.core import Krum, MultiKrum
from repro.core.krum import krum_scores, pairwise_squared_distances
from repro.exceptions import AggregationError, ConfigurationError, ResilienceConditionError


class TestPairwiseDistances:
    def test_matches_reference_loop(self, rng):
        matrix = rng.standard_normal((7, 12))
        dist = pairwise_squared_distances(matrix)
        for i in range(7):
            for j in range(7):
                expected = np.sum((matrix[i] - matrix[j]) ** 2)
                assert dist[i, j] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_diagonal_zero(self, rng):
        dist = pairwise_squared_distances(rng.standard_normal((5, 3)))
        np.testing.assert_allclose(np.diag(dist), 0.0)

    def test_symmetric(self, rng):
        dist = pairwise_squared_distances(rng.standard_normal((6, 4)))
        np.testing.assert_allclose(dist, dist.T, atol=1e-9)

    def test_non_finite_rows_pushed_to_infinity(self, rng):
        matrix = rng.standard_normal((5, 4))
        matrix[2, 1] = np.nan
        dist = pairwise_squared_distances(matrix)
        assert np.isinf(dist[2, [0, 1, 3, 4]]).all()
        assert np.isinf(dist[[0, 1, 3, 4], 2]).all()
        assert dist[2, 2] == 0.0

    def test_never_negative(self, rng):
        # Near-identical rows can produce tiny negative values via round-off.
        base = rng.standard_normal(30)
        matrix = np.tile(base, (6, 1)) + 1e-12 * rng.standard_normal((6, 30))
        assert (pairwise_squared_distances(matrix) >= 0).all()


class TestKrumScores:
    def test_scores_shape(self, honest_gradients):
        dist = pairwise_squared_distances(honest_gradients)
        scores = krum_scores(dist, f=2)
        assert scores.shape == (honest_gradients.shape[0],)

    def test_outlier_gets_highest_score(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, 100.0 * np.ones(20)])
        dist = pairwise_squared_distances(poisoned)
        scores = krum_scores(dist, f=1)
        assert np.argmax(scores) == poisoned.shape[0] - 1

    def test_too_few_neighbours_raises(self):
        dist = pairwise_squared_distances(np.ones((4, 3)))
        with pytest.raises(ResilienceConditionError):
            krum_scores(dist, f=3)

    def test_scores_exclude_self_distance(self):
        # Three identical points plus one far away: each identical point's
        # score with one neighbour is 0 (its twin), not its self-distance.
        matrix = np.array([[0.0], [0.0], [0.0], [10.0]])
        scores = krum_scores(pairwise_squared_distances(matrix), f=0)
        # n - f - 2 = 2 neighbours: the two other identical points for rows 0-2.
        np.testing.assert_allclose(scores[:3], 0.0)
        assert scores[3] == pytest.approx(200.0)


class TestKrum:
    def test_selects_single_gradient(self, honest_gradients):
        result = Krum(f=2).aggregate_detailed(honest_gradients)
        assert result.selected_indices.shape == (1,)
        selected = int(result.selected_indices[0])
        np.testing.assert_allclose(result.gradient, honest_gradients[selected])

    def test_never_selects_large_outlier(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, 1e4 * np.ones(20)])
        result = Krum(f=1).aggregate_detailed(poisoned)
        assert int(result.selected_indices[0]) != poisoned.shape[0] - 1

    def test_output_is_one_of_the_inputs(self, honest_gradients):
        aggregated = Krum(f=2).aggregate(honest_gradients)
        assert any(np.allclose(aggregated, row) for row in honest_gradients)


class TestMultiKrum:
    def test_default_m_is_n_minus_f_minus_2(self, honest_gradients):
        gar = MultiKrum(f=2)
        assert gar.effective_m(11) == 7
        result = gar.aggregate_detailed(honest_gradients)
        assert result.selected_indices.shape == (7,)

    def test_explicit_m_respected(self, honest_gradients):
        result = MultiKrum(f=2, m=3).aggregate_detailed(honest_gradients)
        assert result.selected_indices.shape == (3,)

    def test_m_too_large_rejected(self, honest_gradients):
        with pytest.raises(ResilienceConditionError):
            MultiKrum(f=2, m=8).aggregate(honest_gradients)

    def test_invalid_m_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiKrum(f=1, m=0)
        with pytest.raises(ConfigurationError):
            MultiKrum(f=1, m=-2)

    def test_output_is_mean_of_selected(self, honest_gradients):
        result = MultiKrum(f=2).aggregate_detailed(honest_gradients)
        np.testing.assert_allclose(
            result.gradient, honest_gradients[result.selected_indices].mean(axis=0)
        )

    def test_close_to_true_gradient_despite_byzantine(self, honest_gradients, true_gradient):
        byzantine = np.vstack([1e3 * np.ones(20), -1e3 * np.ones(20)])
        poisoned = np.vstack([honest_gradients, byzantine])
        aggregated = MultiKrum(f=2).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 0.5

    def test_byzantine_rows_not_selected(self, honest_gradients):
        byzantine = 500.0 * np.ones((2, 20))
        poisoned = np.vstack([honest_gradients, byzantine])
        result = MultiKrum(f=2).aggregate_detailed(poisoned)
        assert not (set(result.selected_indices.tolist()) & {11, 12})

    def test_nan_gradients_never_selected(self, honest_gradients):
        nan_rows = np.full((2, 20), np.nan)
        poisoned = np.vstack([honest_gradients, nan_rows])
        result = MultiKrum(f=2).aggregate_detailed(poisoned)
        assert np.isfinite(result.gradient).all()
        assert not (set(result.selected_indices.tolist()) & {11, 12})

    def test_all_nan_raises(self):
        with pytest.raises(AggregationError):
            MultiKrum(f=1).aggregate(np.full((6, 4), np.nan))

    def test_m_equals_n_when_f_zero_minus_two(self, rng):
        # With f=0, the default m is n-2: almost averaging, never the 2 outliers.
        matrix = rng.standard_normal((10, 5))
        result = MultiKrum(f=0).aggregate_detailed(matrix)
        assert result.selected_indices.shape == (8,)

    def test_krum_is_multikrum_with_m_1(self, honest_gradients):
        np.testing.assert_allclose(
            Krum(f=2).aggregate(honest_gradients),
            MultiKrum(f=2, m=1).aggregate(honest_gradients),
        )

    def test_minimum_workers_condition(self):
        assert MultiKrum.minimum_workers(4) == 11
        with pytest.raises(ResilienceConditionError):
            MultiKrum(f=4).aggregate(np.ones((10, 3)))

    def test_permutation_of_workers_does_not_change_output(self, honest_gradients, rng):
        gar = MultiKrum(f=2)
        baseline = gar.aggregate(honest_gradients)
        perm = rng.permutation(honest_gradients.shape[0])
        permuted = gar.aggregate(honest_gradients[perm])
        np.testing.assert_allclose(baseline, permuted, atol=1e-9)
