"""Tests for coordinate-wise median and trimmed mean."""

import numpy as np
import pytest

from repro.core import CoordinateWiseMedian, TrimmedMean
from repro.exceptions import ResilienceConditionError


class TestCoordinateWiseMedian:
    def test_matches_numpy_median(self, honest_gradients):
        np.testing.assert_allclose(
            CoordinateWiseMedian(f=2).aggregate(honest_gradients),
            np.median(honest_gradients, axis=0),
        )

    def test_resists_f_outliers(self, honest_gradients, true_gradient):
        outliers = 1e6 * np.ones((3, honest_gradients.shape[1]))
        poisoned = np.vstack([honest_gradients, outliers])
        aggregated = CoordinateWiseMedian(f=3).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_nan_submission_does_not_poison_output(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, np.full(honest_gradients.shape[1], np.nan)])
        aggregated = CoordinateWiseMedian(f=1).aggregate(poisoned)
        assert np.isfinite(aggregated).all()

    def test_inf_submission_does_not_poison_output(self, honest_gradients):
        row = np.full(honest_gradients.shape[1], np.inf)
        row[::2] = -np.inf
        poisoned = np.vstack([honest_gradients, row])
        aggregated = CoordinateWiseMedian(f=1).aggregate(poisoned)
        assert np.isfinite(aggregated).all()

    def test_minimum_workers(self):
        assert CoordinateWiseMedian.minimum_workers(4) == 9
        with pytest.raises(ResilienceConditionError):
            CoordinateWiseMedian(f=4).aggregate(np.ones((8, 3)))

    def test_resilience_level(self):
        assert CoordinateWiseMedian.resilience == "weak"


class TestTrimmedMean:
    def test_f_zero_equals_mean(self, honest_gradients):
        np.testing.assert_allclose(
            TrimmedMean(f=0).aggregate(honest_gradients), honest_gradients.mean(axis=0)
        )

    def test_trims_extremes_per_coordinate(self):
        gradients = np.array([[0.0], [1.0], [2.0], [3.0], [100.0]])
        aggregated = TrimmedMean(f=1).aggregate(gradients)
        np.testing.assert_allclose(aggregated, [(1.0 + 2.0 + 3.0) / 3.0])

    def test_resists_f_outliers(self, honest_gradients, true_gradient):
        outliers = np.vstack([1e6 * np.ones(20), -1e6 * np.ones(20)])
        poisoned = np.vstack([honest_gradients, outliers])
        aggregated = TrimmedMean(f=2).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_handles_nan_submissions(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, np.full(20, np.nan)])
        aggregated = TrimmedMean(f=1).aggregate(poisoned)
        assert np.isfinite(aggregated).all()

    def test_minimum_workers(self):
        with pytest.raises(ResilienceConditionError):
            TrimmedMean(f=3).aggregate(np.ones((6, 2)))

    def test_output_within_input_range(self, rng):
        matrix = rng.standard_normal((9, 15))
        aggregated = TrimmedMean(f=2).aggregate(matrix)
        assert (aggregated <= matrix.max(axis=0) + 1e-12).all()
        assert (aggregated >= matrix.min(axis=0) - 1e-12).all()
