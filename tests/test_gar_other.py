"""Tests for the geometric median, MeaMed and Phocas rules."""

import numpy as np
import pytest

from repro.core import GeometricMedian, MeaMed, Phocas
from repro.exceptions import ConfigurationError, ResilienceConditionError


class TestGeometricMedian:
    def test_single_point(self):
        point = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(GeometricMedian().aggregate([point]), point, atol=1e-6)

    def test_symmetric_points_give_centroid(self):
        matrix = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        np.testing.assert_allclose(GeometricMedian().aggregate(matrix), [0.0, 0.0], atol=1e-6)

    def test_resists_outlier(self, honest_gradients, true_gradient):
        poisoned = np.vstack([honest_gradients, 1e5 * np.ones(20)])
        aggregated = GeometricMedian(f=1).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_ignores_non_finite_rows(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, np.full(20, np.nan)])
        aggregated = GeometricMedian(f=1).aggregate(poisoned)
        assert np.isfinite(aggregated).all()

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            GeometricMedian(max_iter=0)
        with pytest.raises(ConfigurationError):
            GeometricMedian(tol=0.0)

    def test_minimises_sum_of_distances_better_than_mean(self, rng):
        matrix = rng.standard_normal((9, 6))
        matrix[0] += 50.0  # one outlier
        geo = GeometricMedian().aggregate(matrix)
        mean = matrix.mean(axis=0)
        cost = lambda center: np.linalg.norm(matrix - center, axis=1).sum()
        assert cost(geo) <= cost(mean) + 1e-9


class TestMeaMed:
    def test_f_zero_equals_mean(self, honest_gradients):
        np.testing.assert_allclose(
            MeaMed(f=0).aggregate(honest_gradients), honest_gradients.mean(axis=0)
        )

    def test_resists_f_outliers(self, honest_gradients, true_gradient):
        poisoned = np.vstack([honest_gradients, 1e6 * np.ones((2, 20))])
        aggregated = MeaMed(f=2).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_minimum_workers(self):
        with pytest.raises(ResilienceConditionError):
            MeaMed(f=3).aggregate(np.ones((6, 4)))

    def test_handles_nan(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, np.full(20, np.nan)])
        assert np.isfinite(MeaMed(f=1).aggregate(poisoned)).all()


class TestPhocas:
    def test_f_zero_equals_mean(self, honest_gradients):
        np.testing.assert_allclose(
            Phocas(f=0).aggregate(honest_gradients), honest_gradients.mean(axis=0)
        )

    def test_resists_f_outliers(self, honest_gradients, true_gradient):
        poisoned = np.vstack([honest_gradients, -1e6 * np.ones((2, 20))])
        aggregated = Phocas(f=2).aggregate(poisoned)
        assert np.linalg.norm(aggregated - true_gradient) < 1.0

    def test_minimum_workers(self):
        with pytest.raises(ResilienceConditionError):
            Phocas(f=4).aggregate(np.ones((8, 4)))

    def test_output_within_honest_range_under_attack(self, honest_gradients):
        poisoned = np.vstack([honest_gradients, 1e6 * np.ones((2, 20))])
        aggregated = Phocas(f=2).aggregate(poisoned)
        assert (aggregated <= honest_gradients.max(axis=0) + 1e-9).all()
        assert (aggregated >= honest_gradients.min(axis=0) - 1e-9).all()
