"""Integration tests: full distributed training runs reproducing the paper's claims
at miniature scale (every piece of the stack exercised together)."""

import numpy as np
import pytest

from repro.cluster import TrainerConfig, build_trainer
from repro.data import gaussian_blobs, synthetic_cifar


@pytest.fixture(scope="module")
def dataset():
    return gaussian_blobs(num_train=600, num_test=150, num_classes=4, dim=16,
                          separation=2.5, noise=1.0, rng=0)


COMMON = dict(
    model="mlp",
    model_kwargs={"input_dim": 16, "hidden": (24,), "num_classes": 4},
    num_workers=11,
    batch_size=32,
    learning_rate=5e-3,
    seed=1,
)
CONFIG = TrainerConfig(max_steps=60, eval_every=20)


def run(dataset, **overrides):
    kwargs = dict(COMMON, dataset=dataset)
    kwargs.update(overrides)
    return build_trainer(**kwargs).run(CONFIG)


class TestByzantineResilienceClaims:
    """The central qualitative claims of the paper, end to end."""

    def test_all_gars_converge_without_byzantine(self, dataset):
        for gar in ("average", "median", "multi-krum", "bulyan"):
            history = run(dataset, gar=gar, declared_f=2)
            assert not history.diverged, gar
            assert history.final_accuracy > 0.85, gar

    def test_averaging_breaks_under_each_attack(self, dataset):
        for attack in ("reversed-gradient", "random", "non-finite"):
            history = run(dataset, gar="average", num_byzantine=2, declared_f=2, attack=attack)
            assert history.diverged or history.final_accuracy < 0.7, attack

    @pytest.mark.parametrize("gar", ["multi-krum", "bulyan"])
    @pytest.mark.parametrize("attack", ["reversed-gradient", "random", "non-finite", "little-is-enough"])
    def test_robust_gars_survive_attacks(self, dataset, gar, attack):
        history = run(dataset, gar=gar, num_byzantine=2, declared_f=2, attack=attack)
        assert not history.diverged
        assert history.final_accuracy > 0.8

    def test_multikrum_handles_max_f(self, dataset):
        # n = 11 workers tolerate up to f = 4 (weak resilience).
        history = run(dataset, gar="multi-krum", num_byzantine=4, declared_f=4,
                      attack="reversed-gradient")
        assert history.final_accuracy > 0.8

    def test_overhead_ordering_without_byzantine(self, dataset):
        """Robust aggregation costs simulated time: TF <= Multi-Krum <= Bulyan."""
        times = {}
        for gar in ("average", "multi-krum", "bulyan"):
            history = run(dataset, gar=gar, declared_f=2)
            times[gar] = history.total_time
        assert times["average"] < times["multi-krum"] < times["bulyan"]


class TestLossyTransportClaims:
    def test_robust_gar_tolerates_lossy_links(self, dataset):
        history = run(
            dataset, gar="multi-krum", declared_f=4,
            lossy_links=4, lossy_drop_rate=0.10, lossy_policy="random-fill",
        )
        assert not history.diverged
        assert history.final_accuracy > 0.8

    def test_selective_average_tolerates_nan_fill(self, dataset):
        history = run(
            dataset, gar="selective-average", declared_f=0,
            lossy_links=4, lossy_drop_rate=0.10, lossy_policy="nan-fill",
        )
        assert not history.diverged
        assert history.final_accuracy > 0.8

    def test_plain_average_degrades_with_garbage_fill(self, dataset):
        clean = run(dataset, gar="average")
        lossy = run(
            dataset, gar="average",
            lossy_links=4, lossy_drop_rate=0.10, lossy_policy="random-fill",
        )
        assert lossy.diverged or lossy.final_accuracy < clean.final_accuracy


class TestCNNOnSyntheticImages:
    def test_small_cnn_distributed_training(self):
        """The full stack with the (scaled-down) Table-1 CNN on synthetic CIFAR."""
        dataset = synthetic_cifar(num_train=300, num_test=80, image_size=8, num_classes=4, rng=0)
        trainer = build_trainer(
            model="small-cnn",
            model_kwargs={"image_size": 8, "num_classes": 4},
            dataset=dataset,
            gar="multi-krum",
            num_workers=7,
            num_byzantine=1,
            declared_f=1,
            attack="reversed-gradient",
            batch_size=16,
            learning_rate=2e-3,
            seed=0,
        )
        history = trainer.run(TrainerConfig(max_steps=25, eval_every=25))
        assert not history.diverged
        assert history.final_accuracy > 0.3  # well above the 0.25 chance level
