"""Tests for the shared-link contention scheduler (cluster/link.py)."""

import pytest

from repro.cluster.link import SHARING_MODES, LinkScheduler
from repro.exceptions import ConfigurationError

#: 8 Gbit/s => 1e9 bytes/s: byte counts translate to seconds directly.
GBPS = 8.0
CAP = 1e9


def make(sharing, latency=0.0):
    return LinkScheduler(bandwidth_gbps=GBPS, latency_s=latency, sharing=sharing)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LinkScheduler(bandwidth_gbps=0, latency_s=0, sharing="none")
        with pytest.raises(ConfigurationError):
            LinkScheduler(bandwidth_gbps=1, latency_s=-1, sharing="none")
        with pytest.raises(ConfigurationError):
            LinkScheduler(bandwidth_gbps=1, latency_s=0, sharing="round-robin")

    def test_sharing_modes_exported(self):
        assert SHARING_MODES == ("none", "fair", "fifo")


class TestNoneSharing:
    """Infinite capacity: the seed closed form, contention-free."""

    def test_solo_transfer_matches_formula(self):
        link = make("none", latency=0.5)
        [(finish, delay)] = link.simulate([(0.0, CAP)])  # 1 second of bytes
        assert finish == pytest.approx(1.5)
        assert delay == 0.0

    def test_concurrent_transfers_do_not_interact(self):
        link = make("none")
        schedule = link.simulate([(0.0, CAP), (0.0, CAP), (0.0, 2 * CAP)])
        assert [f for f, _ in schedule] == pytest.approx([1.0, 1.0, 2.0])
        assert all(d == 0.0 for _, d in schedule)


class TestFairSharing:
    def test_two_equal_transfers_each_take_twice_as_long(self):
        link = make("fair")
        schedule = link.simulate([(0.0, CAP), (0.0, CAP)])
        assert [f for f, _ in schedule] == pytest.approx([2.0, 2.0])
        assert [d for _, d in schedule] == pytest.approx([1.0, 1.0])

    def test_n_way_broadcast_scales_with_n(self):
        for n in (2, 4, 8):
            link = make("fair")
            schedule = link.simulate([(0.0, CAP)] * n)
            assert [f for f, _ in schedule] == pytest.approx([float(n)] * n)

    def test_short_transfer_finishing_frees_bandwidth(self):
        # A 1s and a 3s job: share until the short one drains at t=2
        # (1s of bytes at half rate), then the long one runs alone:
        # remaining 2e9 bytes at full rate -> finishes at t=4.
        link = make("fair")
        schedule = link.simulate([(0.0, CAP), (0.0, 3 * CAP)])
        assert [f for f, _ in schedule] == pytest.approx([2.0, 4.0])

    def test_staggered_arrival(self):
        # Job A (2s of bytes) alone for 1s, then shares with job B (1s of
        # bytes): A has 1e9 left, B 1e9, both at half rate -> both end t=3.
        link = make("fair")
        schedule = link.simulate([(0.0, 2 * CAP), (1.0, CAP)])
        assert [f for f, _ in schedule] == pytest.approx([3.0, 3.0])
        # A ideally took 2s, took 3: one second of queueing; B ideally 1s,
        # took 2: one second of queueing.
        assert [d for _, d in schedule] == pytest.approx([1.0, 1.0])

    def test_latency_rides_on_top_once(self):
        link = make("fair", latency=0.25)
        schedule = link.simulate([(0.0, CAP), (0.0, CAP)])
        assert [f for f, _ in schedule] == pytest.approx([2.25, 2.25])
        assert [d for _, d in schedule] == pytest.approx([1.0, 1.0])


class TestFifoSharing:
    def test_sessions_serialise_in_admission_order(self):
        link = make("fifo")
        schedule = link.simulate([(0.0, CAP), (0.0, CAP), (0.0, CAP)])
        assert [f for f, _ in schedule] == pytest.approx([1.0, 2.0, 3.0])
        assert [d for _, d in schedule] == pytest.approx([0.0, 1.0, 2.0])

    def test_later_arrival_waits_for_backlog(self):
        link = make("fifo")
        schedule = link.simulate([(0.0, 2 * CAP), (0.5, CAP)])
        assert [f for f, _ in schedule] == pytest.approx([2.0, 3.0])
        # The second job started at 0.5 and would solo-finish at 1.5.
        assert schedule[1][1] == pytest.approx(1.5)


class TestEventDrivenApi:
    def test_open_advance_pop_cycle(self):
        link = make("fair")
        a = link.open(0.0, CAP, worker_id=1)
        b = link.open(0.0, CAP, worker_id=2)
        target = link.next_completion()
        assert target == pytest.approx(2.0)
        done = link.pop_completed(target)
        assert {s.worker_id for s in done} == {1, 2}
        assert a.done_time == pytest.approx(2.0)
        assert b.queueing_delay == pytest.approx(1.0)
        assert link.next_completion() is None
        assert link.active_sessions == 0

    def test_admission_delays_projected_completion(self):
        link = make("fair")
        link.open(0.0, CAP)
        assert link.next_completion() == pytest.approx(1.0)
        link.open(0.5, CAP)
        # First session drained half its bytes alone; the rest at half rate.
        assert link.next_completion() == pytest.approx(1.5)

    def test_time_cannot_move_backwards(self):
        link = make("fair")
        link.open(1.0, CAP)
        with pytest.raises(ConfigurationError):
            link.advance(0.5)

    def test_zero_byte_session_completes_after_latency_only(self):
        link = make("fifo", latency=0.125)
        session = link.open(2.0, 0.0)
        [done] = link.pop_completed(link.next_completion())
        assert done is session
        assert done.done_time == pytest.approx(2.125)

    def test_determinism_ties_resolve_by_admission_order(self):
        link = make("none")
        first = link.open(0.0, CAP, worker_id=7)
        second = link.open(0.0, CAP, worker_id=3)
        done = link.pop_completed(link.next_completion())
        assert [s.worker_id for s in done] == [7, 3]
        assert first.session_id < second.session_id

    def test_telemetry_counters(self):
        link = make("fair")
        link.open(0.0, CAP)
        link.open(0.0, 3 * CAP)
        while link.active_sessions:
            link.pop_completed(link.next_completion())
        assert link.sessions_opened == 2
        assert link.sessions_completed == 2
        assert link.bytes_carried == pytest.approx(4 * CAP)
