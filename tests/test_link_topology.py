"""Heterogeneous links: profile parsing, per-session caps, per-region pipes."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, build_trainer
from repro.cluster.cost_model import CostModel
from repro.cluster.link import (
    LinkFabric,
    LinkScheduler,
    LinkTopology,
    RegionLink,
    parse_link_profile,
)
from repro.cluster.trainer import TrainerConfig
from repro.exceptions import ConfigurationError


class TestProfileParsing:
    def test_symmetric_and_empty_mean_no_topology(self):
        assert parse_link_profile(None, 4) is None
        assert parse_link_profile("", 4) is None
        assert parse_link_profile("symmetric", 4) is None

    def test_wan_profile_round_robins_workers(self):
        topology = parse_link_profile("wan:3x10mbit", 7)
        assert [r.name for r in topology.regions] == ["region0", "region1", "region2"]
        assert all(r.bandwidth_gbps == pytest.approx(0.01) for r in topology.regions)
        assert all(r.latency_s == 0.0 for r in topology.regions)
        assert topology.region_of(0) == "region0"
        assert topology.region_of(1) == "region1"
        assert topology.region_of(5) == "region2"
        assert topology.region_of(6) == "region0"

    def test_wan_profile_with_latency_suffix(self):
        topology = parse_link_profile("wan:2x100kbit/40ms", 4)
        assert all(r.bandwidth_gbps == pytest.approx(1e-4) for r in topology.regions)
        assert all(r.latency_s == pytest.approx(0.04) for r in topology.regions)

    def test_gbit_and_fractional_units(self):
        topology = parse_link_profile("wan:1x0.5gbit/100us", 2)
        assert topology.regions[0].bandwidth_gbps == pytest.approx(0.5)
        assert topology.regions[0].latency_s == pytest.approx(1e-4)

    @pytest.mark.parametrize("bad", [
        "wan:3x10", "wan:x10mbit", "lan:2x10mbit", "wan:0x10mbit",
        "wan:2x10mbit/fast", "wan:2x-3mbit",
    ])
    def test_malformed_profiles_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_link_profile(bad, 8)

    def test_more_regions_than_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="regions"):
            parse_link_profile("wan:5x10mbit", 3)


class TestTopologyValidation:
    def test_unknown_region_assignment_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown region"):
            LinkTopology(
                regions=(RegionLink("eu"),), worker_regions={0: "us"}
            )

    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            LinkTopology(regions=(RegionLink("eu"), RegionLink("eu")))

    def test_missing_worker_assignment_rejected(self):
        topology = LinkTopology(regions=(RegionLink("eu"),), worker_regions={0: "eu"})
        with pytest.raises(ConfigurationError, match="no region"):
            topology.validate_workers([0, 1])

    def test_nonpositive_worker_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            LinkTopology(
                regions=(RegionLink("eu"),),
                worker_regions={0: "eu"},
                worker_bandwidth_gbps={0: 0.0},
            )


class TestSessionCaps:
    def test_rate_cap_slows_a_session_below_link_rate(self):
        link = LinkScheduler(bandwidth_gbps=8e-9, latency_s=0.0)  # 1 byte/s
        capped = link.open(0.0, 10.0, rate_cap=0.5)
        free = link.open(0.0, 10.0)
        done = {}
        while link.active_sessions:
            target = link.next_completion()
            for session in link.pop_completed(target):
                done[session.session_id] = session.done_time
        assert done[free.session_id] == pytest.approx(10.0)
        assert done[capped.session_id] == pytest.approx(20.0)
        # The cap is part of the session's solo baseline, not queueing.
        assert capped.queueing_delay == pytest.approx(0.0)

    def test_extra_latency_is_per_session(self):
        link = LinkScheduler(bandwidth_gbps=8e-9, latency_s=1.0)
        slow = link.open(0.0, 4.0, extra_latency_s=2.5)
        fast = link.open(0.0, 4.0)
        done = {}
        while link.active_sessions:
            target = link.next_completion()
            for session in link.pop_completed(target):
                done[session.session_id] = session.done_time
        assert done[fast.session_id] == pytest.approx(5.0)
        assert done[slow.session_id] == pytest.approx(7.5)
        assert slow.queueing_delay == pytest.approx(0.0)

    def test_fair_share_respects_caps(self):
        # Two sessions on a 2 byte/s pipe: fair share is 1 byte/s each, but
        # the capped sender can only push 0.5 byte/s.  The cap is not
        # work-conserving: the free session still drains at its fair share.
        link = LinkScheduler(bandwidth_gbps=16e-9, latency_s=0.0, sharing="fair")
        capped = link.open(0.0, 5.0, rate_cap=0.5)
        free = link.open(0.0, 5.0)
        done = {}
        while link.active_sessions:
            target = link.next_completion()
            for session in link.pop_completed(target):
                done[session.session_id] = session.done_time
        assert done[free.session_id] == pytest.approx(5.0)
        # Capped: 5 s at 0.5 B/s drains 2.5 B; then alone, still capped at
        # 0.5 B/s for the remaining 2.5 B -> 10 s total.
        assert done[capped.session_id] == pytest.approx(10.0)

    def test_next_completion_never_overshoots_a_real_arrival(self):
        # Regression: projecting a draining session's arrival at current
        # rates is unsound under heterogeneous extra latencies — when the
        # high-latency session drains first, its peer speeds up and arrives
        # EARLIER than the projection, and an event scheduled at the stale
        # projection would process the arrival late.  next_completion must
        # therefore stop at drain completions (rate-change points).
        link = LinkScheduler(bandwidth_gbps=8e-9, latency_s=0.0, sharing="fair")
        slow = link.open(0.0, 4.0, extra_latency_s=10.0)
        fast = link.open(0.0, 8.0)
        # First event point: slow's drain at t=8 (4 B at the 0.5 B/s share).
        assert link.next_completion() == pytest.approx(8.0)
        assert link.pop_completed(link.next_completion()) == []
        # fast then drains alone at 1 B/s: 4 B left -> t=12, not the t=16
        # the stale half-rate projection implied.
        assert link.next_completion() == pytest.approx(12.0)
        (done,) = link.pop_completed(link.next_completion())
        assert done is fast and done.done_time == pytest.approx(12.0)
        assert link.next_completion() == pytest.approx(18.0)  # slow's arrival
        (done,) = link.pop_completed(18.0)
        assert done is slow

    def test_invalid_session_kwargs_rejected(self):
        link = LinkScheduler(bandwidth_gbps=1.0, latency_s=0.0)
        with pytest.raises(ConfigurationError):
            link.open(0.0, 1.0, rate_cap=0.0)
        with pytest.raises(ConfigurationError):
            link.open(0.0, 1.0, extra_latency_s=-1.0)


class TestLinkFabric:
    def _topology(self):
        return LinkTopology(
            regions=(
                RegionLink("fast", bandwidth_gbps=None),
                RegionLink("slow", bandwidth_gbps=8e-9, latency_s=1.0),  # 1 B/s
            ),
            worker_regions={0: "fast", 1: "slow", 2: "slow"},
            worker_bandwidth_gbps={2: 4e-9},  # 0.5 B/s access cap
            worker_latency_s={2: 0.25},
        )

    def test_solo_seconds_without_topology_delegates_to_cost_model(self):
        cost = CostModel()
        fabric = LinkFabric(cost, None)
        assert fabric.solo_seconds(3, 1234.0) == cost.transfer_time(1234.0)
        assert fabric.uplink_seconds(3, 1234.0, 0.5) == 0.5

    def test_solo_seconds_composes_path_minimum_and_latency_sum(self):
        cost = CostModel(bandwidth_gbps=80e-9, latency_s=0.5)  # 10 B/s base
        fabric = LinkFabric(cost, self._topology())
        # fast region: base rate, base latency.
        assert fabric.solo_seconds(0, 10.0) == pytest.approx(1.0 + 0.5)
        # slow region: 1 B/s bottleneck, +1 s region latency.
        assert fabric.solo_seconds(1, 10.0) == pytest.approx(10.0 + 1.5)
        # worker 2: 0.5 B/s access cap, +0.25 s access latency on top.
        assert fabric.solo_seconds(2, 10.0) == pytest.approx(20.0 + 1.75)

    def test_simulate_contends_per_region_only(self):
        cost = CostModel(bandwidth_gbps=8e-9, latency_s=0.0)  # 1 B/s everywhere
        topology = LinkTopology(
            regions=(RegionLink("a"), RegionLink("b")),
            worker_regions={0: "a", 1: "a", 2: "b"},
        )
        fabric = LinkFabric(cost, topology, sharing="fair")
        results = fabric.simulate([(0.0, 10.0, 0), (0.0, 10.0, 1), (0.0, 10.0, 2)])
        # Region a: two sessions share 1 B/s -> 20 s each, 10 s queueing.
        assert results[0][0] == pytest.approx(20.0)
        assert results[1][0] == pytest.approx(20.0)
        assert results[0][1] == pytest.approx(10.0)
        # Region b: alone on its pipe -> no contention at all.
        assert results[2][0] == pytest.approx(10.0)
        assert results[2][1] == pytest.approx(0.0)

    def test_region_scheduler_caps_at_cost_model_bandwidth(self):
        cost = CostModel(bandwidth_gbps=8e-9)  # 1 B/s server NIC
        topology = LinkTopology(
            regions=(RegionLink("over", bandwidth_gbps=1.0),),
            worker_regions={0: "over"},
        )
        fabric = LinkFabric(cost, topology)
        # A region faster than the server NIC cannot beat the NIC.
        assert fabric.scheduler_for("over").capacity == pytest.approx(1.0)


def _build(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(
        model="mlp",
        model_kwargs=tiny_model_kwargs,
        dataset=tiny_dataset,
        gar="average",
        num_workers=4,
        batch_size=16,
        learning_rate=5e-3,
        seed=123,
    )
    kwargs.update(overrides)
    return build_trainer(**kwargs)


class TestTopologyTraining:
    def test_wan_profile_slows_training_even_without_sharing(
        self, tiny_dataset, tiny_model_kwargs
    ):
        base = _build(tiny_dataset, tiny_model_kwargs)
        wan = _build(tiny_dataset, tiny_model_kwargs, link_profile="wan:2x1mbit")
        h_base = base.run(TrainerConfig(max_steps=3, eval_every=0))
        h_wan = wan.run(TrainerConfig(max_steps=3, eval_every=0))
        # Same trajectory (loss-free links, full sync) but a slower wire.
        np.testing.assert_array_equal(base.server.parameters, wan.server.parameters)
        assert h_wan.total_time > h_base.total_time

    def test_fair_wan_contention_is_per_region(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         link_sharing="fair", link_profile="wan:2x1mbit")
        history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        regions = history.region_queueing_summary()
        assert set(regions) == {"region0", "region1"}
        assert all(delay > 0 for delay in regions.values())

    def test_lone_region_worker_records_no_queueing(
        self, tiny_dataset, tiny_model_kwargs
    ):
        topology = LinkTopology(
            regions=(RegionLink("crowd", bandwidth_gbps=1e-3),
                     RegionLink("lone", bandwidth_gbps=1e-3)),
            worker_regions={0: "crowd", 1: "crowd", 2: "crowd", 3: "lone"},
        )
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         link_sharing="fair", link_topology=topology)
        history = trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        timelines = history.worker_timelines
        # Workers sharing the crowded bottleneck queue; the lone worker never does.
        assert all(timelines[w].queueing_delay_seconds > 0 for w in (0, 1, 2))
        assert timelines[3].queueing_delay_seconds == 0.0
        assert "lone" not in history.region_queueing_summary()

    def test_async_wan_run_is_deterministic(self, tiny_dataset, tiny_model_kwargs):
        params = []
        for _ in range(2):
            trainer = _build(tiny_dataset, tiny_model_kwargs,
                             mode="async", sync_policy="quorum", max_version_lag=3,
                             link_sharing="fifo", link_profile="wan:2x1mbit/5ms")
            trainer.run(TrainerConfig(max_steps=5, eval_every=0))
            params.append(trainer.server.parameters)
        np.testing.assert_array_equal(params[0], params[1])

    def test_profile_and_topology_mutually_exclusive(
        self, tiny_dataset, tiny_model_kwargs
    ):
        topology = LinkTopology(
            regions=(RegionLink("eu"),),
            worker_regions={i: "eu" for i in range(4)},
        )
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            _build(tiny_dataset, tiny_model_kwargs,
                   link_profile="wan:2x1mbit", link_topology=topology)

    def test_topology_must_cover_all_workers(self, tiny_dataset, tiny_model_kwargs):
        topology = LinkTopology(
            regions=(RegionLink("eu"),), worker_regions={0: "eu"}
        )
        with pytest.raises(ConfigurationError, match="no region"):
            _build(tiny_dataset, tiny_model_kwargs, link_topology=topology)

    def test_cluster_spec_link_profile_roundtrips_and_applies(
        self, tiny_dataset, tiny_model_kwargs
    ):
        spec = ClusterSpec.homogeneous(5)
        spec.link_profile = "wan:2x1mbit"
        rebuilt = ClusterSpec.from_dict(spec.to_dict())
        assert rebuilt.link_profile == "wan:2x1mbit"

        plain = _build(tiny_dataset, tiny_model_kwargs)
        via_spec = _build(tiny_dataset, tiny_model_kwargs, cluster=rebuilt)
        h_plain = plain.run(TrainerConfig(max_steps=2, eval_every=0))
        h_spec = via_spec.run(TrainerConfig(max_steps=2, eval_every=0))
        assert via_spec.link_topology is not None
        assert h_spec.total_time > h_plain.total_time
