"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import initializers


def test_zeros():
    np.testing.assert_array_equal(initializers.zeros((3, 4)), np.zeros((3, 4)))


def test_constant():
    np.testing.assert_array_equal(initializers.constant((2, 2), 3.5), np.full((2, 2), 3.5))


def test_normal_std(rng):
    weights = initializers.normal((2000,), rng, std=0.1)
    assert np.std(weights) == pytest.approx(0.1, rel=0.1)


def test_normal_negative_std_rejected():
    with pytest.raises(ConfigurationError):
        initializers.normal((3,), 0, std=-1.0)


def test_glorot_uniform_bounds():
    weights = initializers.glorot_uniform((100, 100), 0)
    limit = np.sqrt(6.0 / 200)
    assert np.abs(weights).max() <= limit


def test_he_normal_scale():
    weights = initializers.he_normal((400, 100), 0)
    assert np.std(weights) == pytest.approx(np.sqrt(2.0 / 400), rel=0.15)


def test_fan_computation_for_conv_kernels():
    weights = initializers.he_normal((64, 3, 5, 5), 0)
    assert np.std(weights) == pytest.approx(np.sqrt(2.0 / (3 * 25)), rel=0.15)


def test_unsupported_shape_rejected():
    with pytest.raises(ConfigurationError):
        initializers.glorot_uniform((2, 3, 4), 0)


def test_get_initializer_lookup():
    assert initializers.get_initializer("he") is initializers.he_normal
    with pytest.raises(ConfigurationError):
        initializers.get_initializer("unknown")


def test_deterministic_given_seed():
    np.testing.assert_array_equal(
        initializers.glorot_uniform((4, 4), 7), initializers.glorot_uniform((4, 4), 7)
    )
