"""Tests for Conv2D and pooling layers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import AvgPool2D, Conv2D, Flatten, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.conv import same_padding, valid_output

from tests.nn_testing import check_layer_gradients


class TestPaddingGeometry:
    def test_same_padding_stride_1(self):
        out, before, after = same_padding(8, 5, 1)
        assert out == 8
        assert before + after == 4

    def test_same_padding_stride_2(self):
        out, _, _ = same_padding(32, 3, 2)
        assert out == 16
        out, _, _ = same_padding(7, 3, 2)
        assert out == 4

    def test_valid_output(self):
        assert valid_output(8, 3, 1) == 6
        assert valid_output(8, 3, 2) == 3
        with pytest.raises(ConfigurationError):
            valid_output(2, 3, 1)


class TestConv2D:
    def test_same_padding_preserves_spatial_size(self, rng):
        layer = Conv2D(3, 8, 5, padding="same", rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_valid_padding_shrinks(self, rng):
        layer = Conv2D(1, 2, 3, padding="valid", rng=rng)
        out = layer.forward(rng.standard_normal((1, 1, 6, 6)))
        assert out.shape == (1, 2, 4, 4)

    def test_stride_two(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, padding="same", rng=rng)
        out = layer.forward(rng.standard_normal((1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_identity_kernel_reproduces_input(self):
        # A 1x1 convolution with a unit kernel and zero bias is the identity.
        layer = Conv2D(1, 1, 1, padding="same", rng=0)
        layer.weight.data[...] = 1.0
        layer.bias.data[...] = 0.0
        x = np.random.default_rng(0).standard_normal((2, 1, 5, 5))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_matches_manual_convolution(self, rng):
        # Compare a tiny VALID convolution against an explicit loop.
        layer = Conv2D(2, 3, 3, padding="valid", rng=rng)
        x = rng.standard_normal((1, 2, 5, 5))
        out = layer.forward(x)
        w, b = layer.weight.data, layer.bias.data
        for co in range(3):
            for y in range(3):
                for xx in range(3):
                    expected = b[co] + np.sum(w[co] * x[0, :, y : y + 3, xx : xx + 3])
                    assert out[0, co, y, xx] == pytest.approx(expected, rel=1e-9)

    def test_parameter_count(self):
        layer = Conv2D(3, 64, 5)
        assert layer.num_parameters == 5 * 5 * 3 * 64 + 64

    def test_wrong_channels_raise(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ConfigurationError):
            layer.forward(rng.standard_normal((1, 2, 8, 8)))

    def test_invalid_padding_rejected(self):
        with pytest.raises(ConfigurationError):
            Conv2D(1, 1, 3, padding="reflect")

    def test_output_shape_helper(self):
        layer = Conv2D(3, 16, 5, stride=1, padding="same")
        assert layer.output_shape((3, 32, 32)) == (16, 32, 32)

    def test_gradients_numerically_same_padding(self, rng):
        check_layer_gradients(Conv2D(2, 3, 3, padding="same", rng=rng), (2, 2, 4, 4), rng=rng)

    def test_gradients_numerically_strided(self, rng):
        check_layer_gradients(
            Conv2D(1, 2, 3, stride=2, padding="same", rng=rng), (2, 1, 5, 5), rng=rng
        )


class TestMaxPool2D:
    def test_semantics_valid(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2, stride=2, padding="valid").forward(x)
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_same_padding_output_shape(self, rng):
        pool = MaxPool2D(3, stride=2, padding="same")
        out = pool.forward(rng.standard_normal((2, 4, 9, 9)))
        assert out.shape == (2, 4, 5, 5)

    def test_backward_routes_gradient_to_argmax(self):
        x = np.array([[[[1.0, 3.0], [2.0, 0.0]]]])
        pool = MaxPool2D(2, stride=2, padding="valid")
        pool.forward(x)
        grad = pool.backward(np.array([[[[7.0]]]]))
        np.testing.assert_allclose(grad, [[[[0.0, 7.0], [0.0, 0.0]]]])

    def test_gradients_numerically(self, rng):
        # Use distinct values so the argmax is stable under epsilon-perturbation.
        pool = MaxPool2D(2, stride=2, padding="valid")
        x = np.random.default_rng(1).permutation(np.arange(32, dtype=float)).reshape(1, 2, 4, 4)
        out = pool.forward(x)
        weights = np.random.default_rng(2).standard_normal(out.shape)
        grad = pool.backward(weights)

        from tests.nn_testing import numerical_gradient

        numeric = numerical_gradient(
            lambda value: float(np.sum(weights * pool.forward(value, training=True))), x.copy(),
            epsilon=1e-3,
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_output_shape_helper(self):
        assert MaxPool2D(3, stride=2, padding="same").output_shape((64, 32, 32)) == (64, 16, 16)


class TestAvgAndGlobalPool:
    def test_avg_pool_semantics(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2D(2, stride=2, padding="valid").forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradients(self, rng):
        check_layer_gradients(AvgPool2D(2, stride=2, padding="valid"), (1, 2, 4, 4), rng=rng)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((3, 5, 4, 4))
        out = GlobalAvgPool2D().forward(x)
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradients(self, rng):
        check_layer_gradients(GlobalAvgPool2D(), (2, 3, 4, 4), rng=rng)


class TestFlatten:
    def test_shape(self, rng):
        out = Flatten().forward(rng.standard_normal((4, 2, 3, 3)))
        assert out.shape == (4, 18)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        layer.forward(rng.standard_normal((4, 2, 3, 3)))
        grad = layer.backward(np.ones((4, 18)))
        assert grad.shape == (4, 2, 3, 3)
