"""Tests for Dense and activation layers (shapes, semantics, gradients)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, LeakyReLU, ReLU, Sigmoid, Tanh

from tests.nn_testing import check_layer_gradients


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(6, 4, rng=rng)
        out = layer.forward(rng.standard_normal((5, 6)))
        assert out.shape == (5, 4)

    def test_forward_matches_matmul(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias_option(self, rng):
        layer = Dense(3, 2, use_bias=False, rng=rng)
        assert layer.bias is None
        assert layer.num_parameters == 6

    def test_parameter_count(self):
        assert Dense(10, 7).num_parameters == 10 * 7 + 7

    def test_wrong_input_dim_raises(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ConfigurationError):
            layer.forward(rng.standard_normal((4, 5)))

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((4, 2)))

    def test_gradients_numerically(self, rng):
        check_layer_gradients(Dense(4, 3, rng=rng), (3, 4), rng=rng)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 3)
        with pytest.raises(ConfigurationError):
            Dense(3, 0)

    def test_eval_mode_does_not_cache(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.forward(rng.standard_normal((2, 3)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))


class TestActivations:
    def test_relu_semantics(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_gradient_mask(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])

    def test_leaky_relu_negative_slope(self):
        layer = LeakyReLU(0.1)
        out = layer.forward(np.array([[-2.0, 4.0]]))
        np.testing.assert_allclose(out, [[-0.2, 4.0]])

    def test_leaky_relu_invalid_slope(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(-0.5)

    def test_sigmoid_range_and_midpoint(self, rng):
        out = Sigmoid().forward(rng.standard_normal((3, 4)) * 10)
        assert ((out > 0) & (out < 1)).all()
        np.testing.assert_allclose(Sigmoid().forward(np.zeros((1, 1))), [[0.5]])

    def test_sigmoid_extreme_inputs_stable(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.isfinite(out).all()

    def test_tanh_matches_numpy(self, rng):
        x = rng.standard_normal((2, 5))
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh, LeakyReLU])
    def test_gradients_numerically(self, layer_cls, rng):
        # Shift inputs away from the ReLU kink to keep finite differences valid.
        layer = layer_cls()
        generator = np.random.default_rng(3)
        x = generator.standard_normal((4, 5)) + 0.05
        x[np.abs(x) < 1e-3] = 0.5
        out = layer.forward(x, training=True)
        weights = generator.standard_normal(out.shape)
        grad = layer.backward(weights)

        from tests.nn_testing import numerical_gradient

        numeric = numerical_gradient(
            lambda value: float(np.sum(weights * layer.forward(value, training=True))), x.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-5, rtol=1e-4)

    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh, LeakyReLU])
    def test_backward_before_forward_raises(self, layer_cls):
        with pytest.raises(RuntimeError):
            layer_cls().backward(np.ones((2, 2)))

    def test_activations_have_no_parameters(self):
        for layer in (ReLU(), Sigmoid(), Tanh(), LeakyReLU()):
            assert layer.parameters() == []
            assert layer.num_parameters == 0
