"""Tests for Dropout, BatchNorm and ResidualBlock."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import BatchNorm, Dropout, ResidualBlock

from tests.nn_testing import check_layer_gradients


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_rate_zero_is_identity(self, rng):
        layer = Dropout(0.0, rng=0)
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(layer.forward(x, training=True), x)

    def test_training_mode_zeroes_roughly_rate_fraction(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        zero_fraction = float((out == 0).mean())
        assert 0.45 < zero_fraction < 0.55

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.3, rng=1)
        x = np.ones((500, 500))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=2)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1)


class TestBatchNorm:
    def test_normalises_batch_statistics(self, rng):
        layer = BatchNorm(5)
        x = 3.0 + 2.0 * rng.standard_normal((64, 5))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_updated(self, rng):
        layer = BatchNorm(3, momentum=0.5)
        x = 10.0 + rng.standard_normal((32, 3))
        layer.forward(x, training=True)
        assert (layer.running_mean > 1.0).all()

    def test_eval_mode_uses_running_statistics(self, rng):
        layer = BatchNorm(3, momentum=0.0)  # running stats = last batch stats
        x = rng.standard_normal((64, 3)) * 4 + 1
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_gamma_beta_are_parameters(self):
        layer = BatchNorm(7)
        assert layer.num_parameters == 14

    def test_wrong_feature_count_raises(self, rng):
        with pytest.raises(ConfigurationError):
            BatchNorm(3).forward(rng.standard_normal((4, 5)))

    def test_gradients_numerically(self, rng):
        check_layer_gradients(BatchNorm(4), (6, 4), rng=rng, atol=1e-4, rtol=1e-3)

    def test_eval_backward_raises(self, rng):
        layer = BatchNorm(3)
        layer.forward(rng.standard_normal((4, 3)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((4, 3)))


class TestResidualBlock:
    def test_shape_preserving_block(self, rng):
        block = ResidualBlock(4, 4, rng=0)
        out = block.forward(rng.standard_normal((2, 4, 6, 6)))
        assert out.shape == (2, 4, 6, 6)
        assert block.projection is None

    def test_channel_change_uses_projection(self, rng):
        block = ResidualBlock(3, 8, rng=0)
        assert block.projection is not None
        out = block.forward(rng.standard_normal((2, 3, 6, 6)))
        assert out.shape == (2, 8, 6, 6)

    def test_stride_downsamples(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=0)
        out = block.forward(rng.standard_normal((1, 4, 8, 8)))
        assert out.shape == (1, 8, 4, 4)

    def test_parameters_include_all_convs(self):
        block = ResidualBlock(3, 8, rng=0)
        conv_params = (
            block.conv1.num_parameters + block.conv2.num_parameters + block.projection.num_parameters
        )
        assert sum(p.size for p in block.parameters()) == conv_params

    def test_zero_grad_clears_all(self, rng):
        block = ResidualBlock(3, 4, rng=0)
        x = rng.standard_normal((1, 3, 5, 5))
        out = block.forward(x)
        block.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for p in block.parameters())
        block.zero_grad()
        assert all(np.abs(p.grad).sum() == 0 for p in block.parameters())

    def test_gradients_numerically(self, rng):
        check_layer_gradients(
            ResidualBlock(2, 2, rng=0), (1, 2, 4, 4), rng=np.random.default_rng(9),
            atol=1e-4, rtol=1e-3,
        )

    def test_output_shape_helper(self):
        block = ResidualBlock(3, 8, stride=2, rng=0)
        assert block.output_shape((3, 8, 8)) == (8, 4, 4)
