"""Tests for loss functions."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, softmax

from tests.nn_testing import numerical_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((5, 7)) * 5)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        assert np.isfinite(probs).all()

    def test_invariant_to_constant_shift(self, rng):
        logits = rng.standard_normal((3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), atol=1e-12)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0], [0.0, 100.0, 0.0]])
        labels = np.array([0, 1])
        assert SoftmaxCrossEntropy().forward(logits, labels) < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 10))
        labels = np.arange(4) % 10
        loss = SoftmaxCrossEntropy().forward(logits, labels)
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((5, 4))
        labels = rng.integers(0, 4, size=5)
        loss.forward(logits, labels)
        analytic = loss.backward()

        numeric = numerical_gradient(
            lambda value: SoftmaxCrossEntropy().forward(value, labels), logits.copy()
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_invalid_labels_rejected(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((3, 4))
        with pytest.raises(ConfigurationError):
            loss.forward(logits, np.array([0, 1, 7]))
        with pytest.raises(ConfigurationError):
            loss.forward(logits, np.array([0, 1]))

    def test_1d_logits_rejected(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy().forward(np.zeros(4), np.zeros(4, dtype=int))

    def test_negative_l2_rejected(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy(l2=-1.0)


class TestMeanSquaredError:
    def test_zero_for_exact_prediction(self, rng):
        target = rng.standard_normal((4, 2))
        assert MeanSquaredError().forward(target, target) == 0.0

    def test_value_matches_numpy(self, rng):
        pred = rng.standard_normal((6, 3))
        target = rng.standard_normal((6, 3))
        expected = float(np.mean((pred - target) ** 2))
        assert MeanSquaredError().forward(pred, target) == pytest.approx(expected)

    def test_gradient_matches_numerical(self, rng):
        loss = MeanSquaredError()
        pred = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 3))
        loss.forward(pred, target)
        analytic = loss.backward()
        numeric = numerical_gradient(
            lambda value: MeanSquaredError().forward(value, target), pred.copy()
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            MeanSquaredError().forward(rng.standard_normal((3, 2)), rng.standard_normal((3, 3)))
