"""Tests for the Sequential model (flat parameter access, loss/gradient, inference)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.losses import MeanSquaredError

from tests.nn_testing import numerical_gradient


@pytest.fixture
def small_model():
    return Sequential(
        [Dense(6, 8, rng=0), ReLU(), Dense(8, 3, rng=1)],
        name="test-mlp",
    )


class TestConstruction:
    def test_empty_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_non_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([Dense(3, 2), "not a layer"])

    def test_negative_l2_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([Dense(3, 2)], l2=-0.1)

    def test_num_parameters(self, small_model):
        assert small_model.num_parameters == (6 * 8 + 8) + (8 * 3 + 3)

    def test_summary_mentions_every_layer(self, small_model):
        text = small_model.summary()
        assert "Dense" in text and "ReLU" in text
        assert f"{small_model.num_parameters:,}" in text


class TestFlatParameters:
    def test_get_set_roundtrip(self, small_model, rng):
        new_params = rng.standard_normal(small_model.num_parameters)
        small_model.set_parameters(new_params)
        np.testing.assert_allclose(small_model.get_parameters(), new_params)

    def test_set_parameters_wrong_size(self, small_model):
        with pytest.raises(ValueError):
            small_model.set_parameters(np.zeros(small_model.num_parameters + 1))

    def test_get_parameters_returns_copy(self, small_model):
        params = small_model.get_parameters()
        params[:] = 0.0
        assert np.abs(small_model.get_parameters()).sum() > 0

    def test_gradients_flat_shape(self, small_model, rng):
        x = rng.standard_normal((5, 6))
        y = rng.integers(0, 3, size=5)
        _, grad = small_model.loss_and_gradient(x, y)
        assert grad.shape == (small_model.num_parameters,)

    def test_zero_grad(self, small_model, rng):
        x = rng.standard_normal((5, 6))
        y = rng.integers(0, 3, size=5)
        small_model.loss_and_gradient(x, y)
        small_model.zero_grad()
        np.testing.assert_allclose(small_model.get_gradients(), 0.0)


class TestLossAndGradient:
    def test_gradient_matches_numerical(self, small_model, rng):
        x = rng.standard_normal((4, 6))
        y = rng.integers(0, 3, size=4)
        _, analytic = small_model.loss_and_gradient(x, y)

        params = small_model.get_parameters()

        def objective(flat):
            small_model.set_parameters(flat)
            outputs = small_model.forward(x, training=False)
            return small_model.loss.forward(outputs, y)

        numeric = numerical_gradient(objective, params.copy(), epsilon=1e-6)
        small_model.set_parameters(params)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)

    def test_does_not_change_parameters(self, small_model, rng):
        before = small_model.get_parameters()
        x = rng.standard_normal((4, 6))
        y = rng.integers(0, 3, size=4)
        small_model.loss_and_gradient(x, y)
        np.testing.assert_allclose(small_model.get_parameters(), before)

    def test_l2_regularisation_adds_parameter_term(self, rng):
        x = rng.standard_normal((4, 6))
        y = rng.integers(0, 3, size=4)
        plain = Sequential([Dense(6, 3, rng=0)], l2=0.0)
        regularised = Sequential([Dense(6, 3, rng=0)], l2=0.1)
        loss_plain, grad_plain = plain.loss_and_gradient(x, y)
        loss_reg, grad_reg = regularised.loss_and_gradient(x, y)
        params = plain.get_parameters()
        assert loss_reg == pytest.approx(loss_plain + 0.05 * float(params @ params))
        np.testing.assert_allclose(grad_reg, grad_plain + 0.1 * params, atol=1e-12)

    def test_mse_head(self, rng):
        model = Sequential([Dense(4, 1, rng=0)], loss=MeanSquaredError())
        x = rng.standard_normal((6, 4))
        y = rng.standard_normal((6, 1))
        loss, grad = model.loss_and_gradient(x, y)
        assert np.isfinite(loss)
        assert grad.shape == (model.num_parameters,)


class TestInference:
    def test_predict_shape_and_range(self, small_model, rng):
        x = rng.standard_normal((10, 6))
        preds = small_model.predict(x)
        assert preds.shape == (10,)
        assert ((preds >= 0) & (preds < 3)).all()

    def test_predict_proba_rows_sum_to_one(self, small_model, rng):
        probs = small_model.predict_proba(rng.standard_normal((5, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_batched_prediction_matches_full(self, small_model, rng):
        x = rng.standard_normal((23, 6))
        np.testing.assert_allclose(
            small_model.predict_logits(x), small_model.predict_logits(x, batch_size=5)
        )

    def test_accuracy_bounds(self, small_model, rng):
        x = rng.standard_normal((20, 6))
        y = rng.integers(0, 3, size=20)
        accuracy = small_model.accuracy(x, y)
        assert 0.0 <= accuracy <= 1.0

    def test_accuracy_perfect_for_learned_labels(self, small_model, rng):
        x = rng.standard_normal((20, 6))
        y = small_model.predict(x)
        assert small_model.accuracy(x, y) == 1.0
