"""Tests for the model zoo (registry and architectures)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import models
from repro.nn.models import available_models, make_model


class TestRegistry:
    def test_expected_models_registered(self):
        assert {"logistic", "mlp", "cifar-cnn", "small-cnn", "resnet-like"} <= set(available_models())

    def test_make_model_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_model("not-a-model")

    def test_make_model_passes_kwargs(self):
        model = make_model("mlp", input_dim=5, hidden=(7,), num_classes=2, rng=0)
        assert model.num_parameters == 5 * 7 + 7 + 7 * 2 + 2


class TestLogistic:
    def test_parameter_count(self):
        model = models.logistic_regression(input_dim=20, num_classes=5, rng=0)
        assert model.num_parameters == 20 * 5 + 5

    def test_forward_shape(self, rng):
        model = models.logistic_regression(input_dim=8, num_classes=3, rng=0)
        assert model.forward(rng.standard_normal((4, 8))).shape == (4, 3)


class TestMLP:
    def test_invalid_hidden_sizes(self):
        with pytest.raises(ConfigurationError):
            models.mlp(hidden=(0,))

    def test_dropout_layer_included(self):
        model = models.mlp(input_dim=4, hidden=(8,), num_classes=2, dropout=0.5, rng=0)
        layer_names = [type(layer).__name__ for layer in model.layers]
        assert "Dropout" in layer_names

    def test_deterministic_for_seed(self):
        a = models.mlp(input_dim=6, hidden=(5,), num_classes=2, rng=3).get_parameters()
        b = models.mlp(input_dim=6, hidden=(5,), num_classes=2, rng=3).get_parameters()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = models.mlp(input_dim=6, hidden=(5,), num_classes=2, rng=3).get_parameters()
        b = models.mlp(input_dim=6, hidden=(5,), num_classes=2, rng=4).get_parameters()
        assert not np.allclose(a, b)


class TestCifarCNN:
    def test_table1_parameter_count(self):
        """The full Table-1 CNN has ~1.75M parameters as reported in the paper."""
        model = models.cifar_cnn(rng=0)
        assert model.num_parameters == 1_756_426
        assert abs(model.num_parameters - 1_750_000) / 1_750_000 < 0.01

    def test_layer_sequence_matches_table1(self):
        model = models.cifar_cnn(rng=0)
        names = [type(layer).__name__ for layer in model.layers]
        assert names == [
            "Conv2D", "ReLU", "MaxPool2D",
            "Conv2D", "ReLU", "MaxPool2D",
            "Flatten", "Dense", "ReLU", "Dense", "ReLU", "Dense",
        ]

    def test_small_cnn_trains_forward_backward(self, rng):
        model = models.small_cnn(image_size=8, num_classes=4, rng=0)
        x = rng.standard_normal((4, 3, 8, 8))
        y = rng.integers(0, 4, size=4)
        loss, grad = model.loss_and_gradient(x, y)
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()
        assert grad.shape == (model.num_parameters,)

    def test_small_cnn_much_smaller_than_full(self):
        assert models.small_cnn(rng=0).num_parameters < 10_000


class TestResNetLike:
    def test_forward_backward(self, rng):
        model = models.resnet_like(
            image_size=8, stage_channels=(4, 8), blocks_per_stage=1, num_classes=3, rng=0
        )
        x = rng.standard_normal((2, 3, 8, 8))
        y = rng.integers(0, 3, size=2)
        loss, grad = model.loss_and_gradient(x, y)
        assert np.isfinite(loss)
        assert grad.shape == (model.num_parameters,)

    def test_larger_than_small_cnn(self):
        large = models.resnet_like(
            image_size=8, stage_channels=(16, 32), blocks_per_stage=2, num_classes=4, rng=0
        )
        small = models.small_cnn(image_size=8, num_classes=4, rng=0)
        assert large.num_parameters > small.num_parameters

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            models.resnet_like(stage_channels=())
        with pytest.raises(ConfigurationError):
            models.resnet_like(blocks_per_stage=0)


class TestEndToEndLearning:
    def test_mlp_learns_blobs(self, tiny_dataset):
        """A few hundred SGD steps on an easy task should reach high accuracy."""
        from repro.optim import Adam

        model = models.mlp(input_dim=8, hidden=(16,), num_classes=3, rng=0)
        optimizer = Adam(learning_rate=5e-3)
        params = model.get_parameters()
        sampler_rng = np.random.default_rng(0)
        for _ in range(150):
            idx = sampler_rng.integers(0, tiny_dataset.num_train, size=32)
            model.set_parameters(params)
            _, grad = model.loss_and_gradient(tiny_dataset.train_x[idx], tiny_dataset.train_y[idx])
            params = optimizer.step(params, grad)
        model.set_parameters(params)
        assert model.accuracy(tiny_dataset.test_x, tiny_dataset.test_y) > 0.85
