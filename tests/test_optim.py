"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optim import (
    SGD,
    Adadelta,
    Adagrad,
    Adam,
    ExponentialDecay,
    FixedSchedule,
    InverseTimeDecay,
    MomentumSGD,
    PolynomialDecay,
    RMSprop,
    StepDecay,
    make_optimizer,
    make_schedule,
)
from repro.optim.base import OPTIMIZER_REGISTRY


ALL_OPTIMIZERS = ["sgd", "momentum", "adam", "rmsprop", "adagrad", "adadelta"]


class TestRegistry:
    def test_expected_optimizers_registered(self):
        assert set(ALL_OPTIMIZERS) <= set(OPTIMIZER_REGISTRY)

    def test_make_optimizer_unknown(self):
        with pytest.raises(ConfigurationError):
            make_optimizer("lbfgs")

    @pytest.mark.parametrize("name", ALL_OPTIMIZERS)
    def test_factory_builds_each(self, name):
        optimizer = make_optimizer(name)
        assert optimizer.name == name


class TestSGD:
    def test_single_step_matches_formula(self):
        optimizer = SGD(learning_rate=0.1)
        new = optimizer.step(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        np.testing.assert_allclose(new, [0.9, 2.1])

    def test_inputs_not_modified(self):
        params = np.ones(3)
        grad = np.ones(3)
        SGD(learning_rate=0.5).step(params, grad)
        np.testing.assert_array_equal(params, np.ones(3))
        np.testing.assert_array_equal(grad, np.ones(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD().step(np.ones(3), np.ones(4))

    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)

    def test_step_count_increments(self):
        optimizer = SGD(learning_rate=0.1)
        optimizer.step(np.ones(2), np.ones(2))
        optimizer.step(np.ones(2), np.ones(2))
        assert optimizer.step_count == 2


class TestMomentum:
    def test_velocity_accumulates(self):
        optimizer = MomentumSGD(learning_rate=1.0, momentum=0.5)
        p = np.zeros(1)
        p1 = optimizer.step(p, np.ones(1))           # v = 1, update = 1
        p2 = optimizer.step(p1, np.ones(1))          # v = 1.5, update = 1.5
        assert p1[0] == pytest.approx(-1.0)
        assert p2[0] == pytest.approx(-2.5)

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            MomentumSGD(momentum=1.0)

    def test_nesterov_differs_from_plain(self):
        plain = MomentumSGD(learning_rate=0.1, momentum=0.9)
        nesterov = MomentumSGD(learning_rate=0.1, momentum=0.9, nesterov=True)
        g = np.ones(3)
        p = np.zeros(3)
        assert not np.allclose(plain.step(p, g), nesterov.step(p, g))

    def test_reset_clears_velocity(self):
        optimizer = MomentumSGD(learning_rate=1.0, momentum=0.9)
        optimizer.step(np.zeros(2), np.ones(2))
        optimizer.reset()
        assert optimizer._velocity is None
        assert optimizer.step_count == 0


class TestAdaptive:
    @pytest.mark.parametrize("cls", [Adam, RMSprop, Adagrad, Adadelta])
    def test_descends_convex_quadratic(self, cls):
        """All adaptive optimizers should minimise f(x) = ||x||^2 quickly."""
        optimizer = cls()
        x = np.full(5, 10.0)
        for _ in range(500):
            x = optimizer.step(x, 2 * x)
        assert np.linalg.norm(x) < np.linalg.norm(np.full(5, 10.0))

    def test_adam_bias_correction_first_step(self):
        optimizer = Adam(learning_rate=0.1)
        new = optimizer.step(np.zeros(1), np.array([1.0]))
        # With bias correction the first step has magnitude ~= learning rate.
        assert abs(new[0]) == pytest.approx(0.1, rel=1e-3)

    def test_rmsprop_normalises_scale(self):
        optimizer = RMSprop(learning_rate=0.01)
        big = optimizer.step(np.zeros(1), np.array([1e6]))
        optimizer2 = RMSprop(learning_rate=0.01)
        small = optimizer2.step(np.zeros(1), np.array([1e-6]))
        # Step magnitude is insensitive to the raw gradient scale (epsilon
        # slightly dampens the tiny-gradient case).
        assert abs(big[0]) == pytest.approx(abs(small[0]), rel=0.05)

    @pytest.mark.parametrize("cls", [Adam, RMSprop, Adagrad, Adadelta])
    def test_reset(self, cls):
        optimizer = cls()
        optimizer.step(np.zeros(3), np.ones(3))
        optimizer.reset()
        assert optimizer.step_count == 0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            RMSprop(decay=-0.1)
        with pytest.raises(ConfigurationError):
            Adagrad(eps=0.0)
        with pytest.raises(ConfigurationError):
            Adadelta(rho=2.0)


class TestSchedules:
    def test_fixed(self):
        assert FixedSchedule(0.1)(0) == 0.1
        assert FixedSchedule(0.1)(1000) == 0.1

    def test_polynomial_endpoints(self):
        schedule = PolynomialDecay(1.0, 0.1, decay_steps=10)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(100) == pytest.approx(0.1)

    def test_exponential_decay(self):
        schedule = ExponentialDecay(1.0, 0.5, decay_steps=10)
        assert schedule(10) == pytest.approx(0.5)
        assert schedule(20) == pytest.approx(0.25)

    def test_step_decay(self):
        schedule = StepDecay(1.0, factor=0.1, every=5)
        assert schedule(4) == pytest.approx(1.0)
        assert schedule(5) == pytest.approx(0.1)
        assert schedule(10) == pytest.approx(0.01)

    def test_inverse_time_satisfies_robbins_monro_shape(self):
        schedule = InverseTimeDecay(1.0, decay_rate=1.0)
        assert schedule(0) == 1.0
        assert schedule(9) == pytest.approx(0.1)

    def test_monotone_non_increasing(self):
        for schedule in (
            PolynomialDecay(1.0, 0.0, 50),
            ExponentialDecay(1.0, 0.9, 10),
            StepDecay(1.0),
            InverseTimeDecay(1.0),
        ):
            values = [schedule(t) for t in range(100)]
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_make_schedule(self):
        schedule = make_schedule("exponential", initial=1.0, decay_rate=0.5, decay_steps=5)
        assert isinstance(schedule, ExponentialDecay)
        with pytest.raises(ConfigurationError):
            make_schedule("cosine")

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PolynomialDecay(0.0, 0.0, 10)
        with pytest.raises(ConfigurationError):
            ExponentialDecay(1.0, 0.5, 0)
        with pytest.raises(ConfigurationError):
            StepDecay(1.0, every=0)

    def test_optimizer_accepts_schedule(self):
        optimizer = SGD(learning_rate=PolynomialDecay(1.0, 0.0, 2))
        p = np.zeros(1)
        p = optimizer.step(p, np.ones(1))   # lr 1.0
        p = optimizer.step(p, np.ones(1))   # lr 0.5
        p = optimizer.step(p, np.ones(1))   # lr 0.0
        assert p[0] == pytest.approx(-1.5)
