"""Tests for the sharded/replicated parameter service (``--server-topology``).

Two contracts anchor the service:

* ``shards:1`` (and ``replicas:1``) is **bit-identical** to the plain
  single-server deployment — parameters, simulated clock and the full
  telemetry export — because the trainers skip every fabric hook when the
  topology is trivial.  The parity grid below pins that across the hot-path
  branches (codecs, WAN, delta broadcasts, stragglers, async engine).
* Non-trivial *sharding* never touches the data plane: the synchronous
  engine's parameters stay bit-identical to the unsharded run (the gather
  wire only shifts simulated time), while the byte ledger splits into
  local/cross-region flows and the measured inter-server gather replaces
  the analytic shard-combine term.
"""

import json

import numpy as np
import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.checkpoint import (
    capture_training_state,
    load_training_state,
    restore_training_state,
    save_training_state,
)
from repro.cluster.service import (
    REPLICA_DIGEST_BYTES,
    ServerFabric,
    ServerTopology,
    home_shard,
    parse_server_topology,
    place_shards,
    shard_bounds,
)
from repro.cluster.trainer import TrainerConfig
from repro.data.datasets import gaussian_blobs
from repro.exceptions import ConfigurationError


# --------------------------------------------------------------------- grammar
class TestTopologyGrammar:
    @pytest.mark.parametrize(
        "spec, kind, count",
        [
            (None, "single", 1),
            ("", "single", 1),
            ("single", "single", 1),
            ("shards:4", "shards", 4),
            ("  Shards:2 ", "shards", 2),
            ("replicas:3", "replicas", 3),
            ("region-sharded", "region-sharded", 0),
        ],
    )
    def test_parse(self, spec, kind, count):
        topology = parse_server_topology(spec)
        assert (topology.kind, topology.count) == (kind, count)

    @pytest.mark.parametrize(
        "spec", ["shards:", "shards:x", "shards:0", "replicas:-1", "mesh:3", "2"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_server_topology(spec)

    def test_spec_round_trips(self):
        for spec in ("single", "shards:4", "replicas:3", "region-sharded"):
            topology = parse_server_topology(spec)
            assert topology.spec == spec
            assert parse_server_topology(topology.spec) == topology

    def test_region_sharded_rejects_explicit_count(self):
        with pytest.raises(ConfigurationError):
            ServerTopology(kind="region-sharded", count=2)


class TestShardGeometry:
    @pytest.mark.parametrize("dim, n", [(10, 1), (10, 3), (10, 10), (7, 4), (1, 1)])
    def test_bounds_partition_every_coordinate(self, dim, n):
        bounds = shard_bounds(dim, n)
        assert len(bounds) == n
        assert bounds[0][0] == 0 and bounds[-1][1] == dim
        widths = [hi - lo for lo, hi in bounds]
        assert sum(widths) == dim
        assert max(widths) - min(widths) <= 1
        for (_, hi_prev), (lo, _) in zip(bounds, bounds[1:]):
            assert hi_prev == lo

    def test_bounds_reject_impossible_splits(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 5)
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 0)
        with pytest.raises(ConfigurationError):
            shard_bounds(0, 1)

    def test_placement_round_robin(self):
        assert place_shards(4, ["eu", "us"]) == ["eu", "us", "eu", "us"]
        assert place_shards(1, ["solo"]) == ["solo"]
        with pytest.raises(ConfigurationError):
            place_shards(2, [])

    def test_home_shard_is_pure_modulo(self):
        assert [home_shard(w, 3) for w in range(6)] == [0, 1, 2, 0, 1, 2]
        with pytest.raises(ConfigurationError):
            home_shard(0, 0)


# ------------------------------------------------------------- deployment grid
BASE_KWARGS = dict(
    model="logistic",
    model_kwargs={"input_dim": 10, "num_classes": 5},
    gar="median",
    num_workers=8,
    num_byzantine=2,
    attack="sign-flip",
    batch_size=16,
    learning_rate=0.05,
    seed=11,
)


def _build(topology, overrides=None):
    kwargs = dict(BASE_KWARGS)
    kwargs["dataset"] = gaussian_blobs(num_train=2000, num_classes=5, dim=10, rng=3)
    kwargs.update(overrides or {})
    kwargs["server_topology"] = topology
    return build_trainer(**kwargs)


def _run(topology, overrides=None, steps=6):
    trainer = _build(topology, overrides)
    history = trainer.run(TrainerConfig(max_steps=steps, eval_every=0))
    return trainer, history


PARITY_SCENARIOS = {
    "sync_identity": {},
    "sync_topk_ef": {"codec": "top-k", "codec_k": 8},
    "sync_wan": {"link_profile": "wan:2x10mbit/5ms", "link_sharing": "fair"},
    "sync_broadcast_delta": {"broadcast_codec": "top-k", "broadcast_k": 8},
    "sync_compact": {"compact_telemetry": True},
    "async_identity": {"mode": "async", "sync_policy": "quorum"},
    "async_wan": {
        "mode": "async",
        "sync_policy": "quorum",
        "link_profile": "wan:2x10mbit/5ms",
        "link_sharing": "fair",
    },
    "async_qsgd": {"mode": "async", "sync_policy": "quorum", "codec": "qsgd",
                   "quantize_bits": 4},
}


@pytest.mark.parametrize("name", sorted(PARITY_SCENARIOS))
def test_shards1_is_bit_identical_to_single_server(name):
    """The hard contract: a trivial service is indistinguishable from none."""
    overrides = PARITY_SCENARIOS[name]
    plain_trainer, plain_history = _run(None, overrides)
    shard_trainer, shard_history = _run("shards:1", overrides)
    np.testing.assert_array_equal(
        shard_trainer.server.parameters, plain_trainer.server.parameters
    )
    assert shard_trainer.clock.now == plain_trainer.clock.now
    assert shard_history.to_dict() == plain_history.to_dict()


def test_replicas1_and_single_spec_are_also_trivial():
    plain_trainer, plain_history = _run(None)
    for spec in ("replicas:1", "single"):
        trainer, history = _run(spec)
        np.testing.assert_array_equal(
            trainer.server.parameters, plain_trainer.server.parameters
        )
        assert history.to_dict() == plain_history.to_dict()


def test_sync_sharding_leaves_the_data_plane_untouched():
    """Sharding is a systems-layer change: sync parameters stay bit-equal."""
    plain_trainer, _ = _run(None)
    shard_trainer, shard_history = _run("shards:2")
    np.testing.assert_array_equal(
        shard_trainer.server.parameters, plain_trainer.server.parameters
    )
    # ...but the run now carries a measured inter-server ledger.
    summary = shard_history.to_dict()["interserver"]
    assert summary["gather_bytes"] > 0
    assert summary["gather_sessions"] == 6  # one non-coordinator shard x 6 rounds
    assert shard_trainer.clock.now > plain_trainer.clock.now


def test_region_sharding_localises_home_slices_on_wan():
    overrides = {"link_profile": "wan:2x10mbit/5ms", "link_sharing": "fair"}
    trainer, history = _run("region-sharded", overrides)
    service = trainer.service
    assert service.num_shards == 2
    assert {shard.region for shard in service.shards} == {"region0", "region1"}
    counters = service.counters
    # Workers alternate regions and shards alternate regions, so both local
    # and cross flows must be populated — and agree with the telemetry export.
    assert counters["push_local_bytes"] > 0
    assert counters["push_cross_bytes"] > 0
    assert counters["fetch_local_bytes"] > 0
    assert counters["fetch_cross_bytes"] > 0
    exported = history.to_dict()["interserver"]
    assert exported["push_cross_bytes"] == counters["push_cross_bytes"]


def test_region_sharded_requires_wan_regions():
    with pytest.raises(ConfigurationError, match="region"):
        _build("region-sharded")


def test_sharding_rejects_more_shards_than_parameters():
    with pytest.raises(ConfigurationError, match="cannot shard"):
        _build("shards:999")


def test_replicas_sync_digests_not_models():
    plain_trainer, _ = _run(None)
    trainer, _ = _run("replicas:3")
    np.testing.assert_array_equal(
        trainer.server.parameters, plain_trainer.server.parameters
    )
    counters = trainer.service.counters
    # Two non-primary replicas x 6 rounds x one 16-byte digest each.
    assert counters["replica_sync_bytes"] == 2 * 6 * REPLICA_DIGEST_BYTES
    assert counters["gather_bytes"] == counters["replica_sync_bytes"]


def test_gather_pricing_is_deterministic():
    first, _ = _run("shards:3")
    second, _ = _run("shards:3")
    assert first.service.counters == second.service.counters


# ------------------------------------------------------------------ fabric unit
def _fabric(topology="shards:2", **kwargs):
    trainer = _build(None)
    return ServerFabric(
        trainer.server,
        trainer.cost_model,
        topology=parse_server_topology(topology),
        **kwargs,
    )


class TestServerFabric:
    def test_describe_is_json_serialisable(self):
        description = _fabric("shards:3").describe()
        assert json.loads(json.dumps(description)) == description
        assert description["num_actors"] == 3
        assert [s["shard_id"] for s in description["shards"]] == [0, 1, 2]

    def test_trivial_fabric_prices_nothing(self):
        fabric = _fabric("shards:1")
        assert fabric.is_trivial
        assert fabric.gather_seconds(8) == 0.0
        fabric.account_fetches([0, 1], [100.0, 100.0])
        assert all(value == 0.0 for value in fabric.counters.values())

    def test_state_dict_json_round_trip(self):
        fabric = _fabric()
        fabric.gather_seconds(8)
        state = fabric.state_dict()
        assert json.loads(json.dumps(state)) == state
        twin = _fabric()
        twin.restore_state(json.loads(json.dumps(state)))
        assert twin.counters == fabric.counters
        for shard_id in range(fabric.num_shards):
            assert twin.shard_versions(shard_id) == fabric.shard_versions(shard_id)

    def test_restore_rejects_topology_mismatch(self):
        state = _fabric("shards:2").state_dict()
        with pytest.raises(ConfigurationError, match="topology"):
            _fabric("shards:3").restore_state(state)

    def test_restore_rejects_divergent_digests(self):
        fabric = _fabric()
        state = fabric.state_dict()
        version = next(iter(state["shards"][0]["versions"]))
        state["shards"][0]["versions"][version] = "00" * 16
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            fabric.restore_state(state)

    def test_version_store_tracks_every_shard(self):
        trainer, _ = _run("shards:2")
        service = trainer.service
        retained = set(trainer.server.retained_versions())
        for shard_id in range(service.num_shards):
            versions = service.shard_versions(shard_id)
            assert set(versions) == retained
        state = service.state_dict()
        pins = {int(v): c for v, c in state["shards"][0]["pins"].items()}
        assert pins == trainer.server.pinned_versions()


# ----------------------------------------------------------- checkpoint/resume
def _quorum_overrides():
    return {
        "mode": "sync",
        "sync_policy": "quorum",
        "sync_kwargs": {"quorum": 6, "stragglers": "carry"},
    }


def test_resume_is_bit_identical_under_shards2_quorum_carry(tmp_path):
    """Interrupt at step 3, resume from disk, match the uninterrupted run."""
    overrides = _quorum_overrides()
    reference, _ = _run("shards:2", overrides)

    first = _build("shards:2", overrides)
    first.run(TrainerConfig(max_steps=3, eval_every=0))
    state = capture_training_state(first)
    assert state.service_state is not None
    path = save_training_state(state, tmp_path / "svc.npz")
    loaded = load_training_state(path)
    assert loaded.service_state == state.service_state

    resumed = _build("shards:2", overrides)
    restore_training_state(resumed, loaded)
    resumed.run(TrainerConfig(max_steps=3, eval_every=0))
    np.testing.assert_array_equal(
        resumed.server.parameters, reference.server.parameters
    )
    assert resumed.clock.now == reference.clock.now
    # The cumulative interserver ledger carries across the interruption.
    assert resumed.service.counters == reference.service.counters


def test_restore_rejects_service_mismatch():
    overrides = _quorum_overrides()
    sharded = _build("shards:2", overrides)
    sharded.run(TrainerConfig(max_steps=2, eval_every=0))
    sharded_state = capture_training_state(sharded)

    plain = _build(None, overrides)
    with pytest.raises(ConfigurationError, match="without a server topology"):
        restore_training_state(plain, sharded_state)

    plain2 = _build(None, overrides)
    plain2.run(TrainerConfig(max_steps=2, eval_every=0))
    plain_state = capture_training_state(plain2)
    sharded2 = _build("shards:2", overrides)
    with pytest.raises(ConfigurationError, match="no service state"):
        restore_training_state(sharded2, plain_state)
