"""Property-based tests (hypothesis) on the gradient aggregation rules.

These check structural invariants that must hold for *any* input:

* permutation invariance — the order in which workers' gradients arrive must
  not change the aggregate;
* translation equivariance — shifting every gradient by a constant vector
  shifts the aggregate by the same vector (holds for all built-in rules);
* coordinate-range containment — selection/median-based rules produce
  coordinates inside the range spanned by the inputs;
* Byzantine resilience — with at most ``f`` arbitrary rows, the output of a
  robust rule stays within the envelope of the honest rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import Average, Bulyan, CoordinateWiseMedian, MeaMed, MultiKrum, TrimmedMean

# Small, well-conditioned float strategy (avoid overflow-scale values).
finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def gradient_matrices(min_rows: int, max_rows: int = 15, max_cols: int = 12):
    """Strategy producing (n, d) float matrices with n in [min_rows, max_rows]."""
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=min_rows, max_value=max_rows),
            st.integers(min_value=1, max_value=max_cols),
        ),
        elements=finite_floats,
    )


RULES = [
    ("average", lambda: Average(), 1),
    ("median", lambda: CoordinateWiseMedian(f=1), 3),
    ("trimmed-mean", lambda: TrimmedMean(f=1), 3),
    ("meamed", lambda: MeaMed(f=1), 3),
    ("multi-krum", lambda: MultiKrum(f=1), 5),
    ("bulyan", lambda: Bulyan(f=1), 7),
]


def generic_matrix(data, min_rows: int, max_rows: int = 15, max_cols: int = 12) -> np.ndarray:
    """A generic (tie-free, continuous) random matrix parameterised by hypothesis.

    Selection-based rules break exact ties by worker index, so inputs with
    duplicated rows or symmetric deviations are legitimately order-dependent;
    the invariance properties below are about *generic* inputs, which we
    obtain by sampling a continuous distribution whose shape, scale and seed
    hypothesis controls.
    """
    n = data.draw(st.integers(min_value=min_rows, max_value=max_rows))
    d = data.draw(st.integers(min_value=1, max_value=max_cols))
    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    scale = data.draw(st.floats(min_value=1e-3, max_value=1e3))
    offset = data.draw(st.floats(min_value=-1e3, max_value=1e3))
    rng = np.random.default_rng(seed)
    return offset + scale * rng.standard_normal((n, d))


@pytest.mark.parametrize("name,factory,min_rows", RULES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_permutation_invariance(name, factory, min_rows, data):
    matrix = generic_matrix(data, min_rows)
    gar = factory()
    baseline = gar.aggregate(matrix)
    perm = data.draw(st.permutations(range(matrix.shape[0])))
    permuted = gar.aggregate(matrix[np.array(perm)])
    np.testing.assert_allclose(baseline, permuted, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("name,factory,min_rows", RULES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_translation_equivariance(name, factory, min_rows, data):
    matrix = generic_matrix(data, min_rows)
    shift = data.draw(
        hnp.arrays(np.float64, shape=matrix.shape[1],
                   elements=st.floats(min_value=-100, max_value=100, allow_nan=False))
    )
    gar = factory()
    baseline = gar.aggregate(matrix)
    shifted = gar.aggregate(matrix + shift[None, :])
    np.testing.assert_allclose(shifted, baseline + shift, rtol=1e-6, atol=1e-4)


@pytest.mark.parametrize(
    "name,factory,min_rows",
    [r for r in RULES if r[0] != "average"],
)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_output_within_input_coordinate_range(name, factory, min_rows, data):
    matrix = data.draw(gradient_matrices(min_rows))
    aggregated = factory().aggregate(matrix)
    low = matrix.min(axis=0) - 1e-6 - 1e-9 * np.abs(matrix).max()
    high = matrix.max(axis=0) + 1e-6 + 1e-9 * np.abs(matrix).max()
    assert (aggregated >= low).all()
    assert (aggregated <= high).all()


@pytest.mark.parametrize(
    "factory,min_honest",
    [
        (lambda: CoordinateWiseMedian(f=1), 5),
        (lambda: TrimmedMean(f=1), 5),
        (lambda: MultiKrum(f=1), 5),
        (lambda: Bulyan(f=1), 7),
    ],
)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_byzantine_row_cannot_escape_honest_envelope(factory, min_honest, data):
    """With one arbitrary row among tightly clustered honest rows, the robust
    aggregate must stay within (a small margin of) the honest coordinate range."""
    d = data.draw(st.integers(min_value=1, max_value=8))
    n_honest = data.draw(st.integers(min_value=min_honest, max_value=12))
    center = data.draw(
        hnp.arrays(np.float64, shape=d, elements=st.floats(min_value=-10, max_value=10,
                                                           allow_nan=False))
    )
    rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=2**31)))
    honest = center[None, :] + 0.01 * rng.standard_normal((n_honest, d))
    byzantine = data.draw(
        hnp.arrays(np.float64, shape=(1, d), elements=finite_floats)
    )
    matrix = np.vstack([honest, byzantine])
    aggregated = factory().aggregate(matrix)
    spread = honest.max(axis=0) - honest.min(axis=0) + 1e-9
    assert (aggregated >= honest.min(axis=0) - spread).all()
    assert (aggregated <= honest.max(axis=0) + spread).all()


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_average_is_exact_mean(data):
    matrix = data.draw(gradient_matrices(1))
    np.testing.assert_allclose(Average().aggregate(matrix), matrix.mean(axis=0), rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_multikrum_selection_count_matches_m(data):
    matrix = data.draw(gradient_matrices(5))
    n = matrix.shape[0]
    m = data.draw(st.integers(min_value=1, max_value=n - 1 - 2))
    result = MultiKrum(f=1, m=m).aggregate_detailed(matrix)
    assert result.selected_indices.shape == (m,)
    assert len(set(result.selected_indices.tolist())) == m
