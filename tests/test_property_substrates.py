"""Property-based tests for the substrates: flattening, packets, theory, optimizers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.packets import Packetizer, RecoveryPolicy
from repro.core import theory
from repro.optim import SGD, Adam, RMSprop
from repro.utils.flatten import flatten_arrays, unflatten_array


@settings(max_examples=40, deadline=None)
@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=6
    ),
    seed=st.integers(0, 2**31),
)
def test_flatten_unflatten_roundtrip(shapes, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(shape) for shape in shapes]
    flat, recorded = flatten_arrays(arrays)
    assert flat.size == sum(a.size for a in arrays)
    restored = unflatten_array(flat, recorded)
    for original, back in zip(arrays, restored):
        np.testing.assert_array_equal(original, back)


@settings(max_examples=40, deadline=None)
@given(
    dim=st.integers(1, 2000),
    packet_size=st.integers(1, 300),
    seed=st.integers(0, 2**31),
)
def test_packetizer_roundtrip_without_loss(dim, packet_size, seed):
    rng = np.random.default_rng(seed)
    gradient = rng.standard_normal(dim)
    for policy in RecoveryPolicy:
        packetizer = Packetizer(packet_size, policy=policy, rng=seed)
        packets = packetizer.split(gradient)
        assert len(packets) == packetizer.num_packets(dim)
        assert sum(p.payload.size for p in packets) == dim
        restored = packetizer.reassemble(packets, dim)
        np.testing.assert_array_equal(restored, gradient)


@settings(max_examples=40, deadline=None)
@given(
    dim=st.integers(10, 1500),
    packet_size=st.integers(5, 200),
    drop_index=st.integers(0, 10_000),
    seed=st.integers(0, 2**31),
)
def test_packetizer_nan_fill_marks_exactly_the_lost_packet(dim, packet_size, drop_index, seed):
    rng = np.random.default_rng(seed)
    gradient = rng.standard_normal(dim)
    packetizer = Packetizer(packet_size, policy=RecoveryPolicy.NAN_FILL, rng=seed)
    packets = packetizer.split(gradient)
    lost = drop_index % len(packets)
    survivors = [p for i, p in enumerate(packets) if i != lost]
    restored = packetizer.reassemble(survivors, dim)
    lost_slice = slice(lost * packet_size, min((lost + 1) * packet_size, dim))
    assert np.isnan(restored[lost_slice]).all()
    kept_mask = np.ones(dim, dtype=bool)
    kept_mask[lost_slice] = False
    np.testing.assert_array_equal(restored[kept_mask], gradient[kept_mask])


@settings(max_examples=60, deadline=None)
@given(f=st.integers(0, 20))
def test_theory_minimum_workers_are_consistent(f):
    n_weak = theory.multi_krum_min_workers(f)
    n_strong = theory.bulyan_min_workers(f)
    assert n_strong >= n_weak
    # At the minimum deployment, the maximum tolerated f equals the requested f.
    assert theory.max_byzantine_weak(n_weak) == f
    assert theory.max_byzantine_strong(n_strong) == f
    # And the selection bound is achievable (>= 1).
    assert theory.max_selection_weak(n_weak, f) >= 1
    assert theory.max_selection_strong(n_strong, f) >= 1


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(3, 100),
    f=st.integers(0, 40),
)
def test_theory_slowdown_bounds(n, f):
    if n < 2 * f + 3:
        return  # undeployable combination; nothing to check
    weak = theory.slowdown_ratio(n, f, strong=False)
    assert 0 < weak <= 1.0
    if n >= 4 * f + 3:
        strong = theory.slowdown_ratio(n, f, strong=True)
        assert 0 < strong <= weak


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    dim=st.integers(1, 50),
    steps=st.integers(1, 20),
)
def test_optimizers_produce_finite_parameters(seed, dim, steps):
    rng = np.random.default_rng(seed)
    for optimizer in (SGD(learning_rate=0.1), Adam(), RMSprop()):
        params = rng.standard_normal(dim)
        for _ in range(steps):
            gradient = rng.standard_normal(dim)
            params = optimizer.step(params, gradient)
        assert np.isfinite(params).all()
        assert params.shape == (dim,)
