"""Tests for the replicated parameter server (the §6 untrusted-server extension)."""

import numpy as np
import pytest

from repro.cluster.message import GradientMessage
from repro.cluster.replicated_server import ReplicatedParameterServer, majority_model
from repro.core import MultiKrum
from repro.exceptions import ConfigurationError, TrainingError
from repro.optim import SGD


class TestMajorityModel:
    def test_unanimous(self):
        model = np.arange(4.0)
        np.testing.assert_allclose(majority_model([model, model, model]), model)

    def test_majority_beats_liar(self):
        model = np.ones(5)
        garbage = 100.0 * np.ones(5)
        np.testing.assert_allclose(majority_model([model, model, model, garbage]), model)

    def test_no_quorum_raises(self):
        proposals = [np.zeros(3), np.ones(3), 2 * np.ones(3)]
        with pytest.raises(TrainingError):
            majority_model(proposals)

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            majority_model([])

    def test_custom_quorum(self):
        proposals = [np.zeros(3), np.zeros(3), np.ones(3)]
        np.testing.assert_allclose(majority_model(proposals, quorum=2), np.zeros(3))
        with pytest.raises(ConfigurationError):
            majority_model(proposals, quorum=5)


def make_replicated(num_replicas=4, byzantine=0, dim=6):
    return ReplicatedParameterServer(
        np.zeros(dim),
        MultiKrum(f=1),
        lambda: SGD(learning_rate=0.1),
        num_replicas=num_replicas,
        byzantine_replicas=byzantine,
        rng=0,
    )


def honest_round(dim=6, n=6, step=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        GradientMessage(worker_id=i, step=step, gradient=np.ones(dim) + 0.01 * rng.standard_normal(dim))
        for i in range(n)
    ]


class TestReplicatedParameterServer:
    def test_bft_requirement(self):
        with pytest.raises(ConfigurationError):
            make_replicated(num_replicas=3, byzantine=1)
        make_replicated(num_replicas=4, byzantine=1)

    def test_correct_replicas_stay_in_agreement(self):
        server = make_replicated()
        for step in range(3):
            server.apply_round(honest_round(step=step, seed=step))
        models = [replica.parameters for replica in server.replicas]
        for model in models[1:]:
            np.testing.assert_allclose(model, models[0])

    def test_quorum_model_ignores_byzantine_replica(self):
        clean = make_replicated(num_replicas=4, byzantine=0)
        compromised = make_replicated(num_replicas=4, byzantine=1)
        messages = honest_round()
        clean_model = clean.apply_round(messages)
        compromised_model = compromised.apply_round(messages)
        np.testing.assert_allclose(compromised_model, clean_model)

    def test_worker_view_matches_parameters(self):
        server = make_replicated(byzantine=1)
        server.apply_round(honest_round())
        np.testing.assert_allclose(server.worker_view(), server.parameters)

    def test_broadcast_contains_garbage_from_byzantine_replica(self):
        server = make_replicated(num_replicas=4, byzantine=1)
        proposals = server.broadcast()
        # The first replica lies; its proposal is far from the (zero) true model.
        assert np.abs(proposals[0]).max() > 10
        np.testing.assert_allclose(proposals[1], 0.0)

    def test_too_many_byzantine_replicas_break_the_quorum(self):
        # Constructing such a deployment is refused up-front...
        with pytest.raises(ConfigurationError):
            make_replicated(num_replicas=4, byzantine=2)

    def test_step_and_dim(self):
        server = make_replicated()
        assert server.dim == 6
        assert server.step == 0
        server.apply_round(honest_round())
        assert server.step == 1

    def test_descends_towards_gradient_direction(self):
        server = make_replicated(byzantine=1)
        model_before = server.parameters
        model_after = server.apply_round(honest_round())
        # One SGD step against an all-ones gradient moves every coordinate down.
        assert (model_after < model_before).all()
