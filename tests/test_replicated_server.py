"""Tests for the replicated parameter server (the §6 untrusted-server extension)."""

import numpy as np
import pytest

from repro.cluster.message import GradientMessage
from repro.cluster.replicated_server import ReplicatedParameterServer, majority_model
from repro.core import MultiKrum
from repro.exceptions import ConfigurationError, TrainingError
from repro.optim import SGD


class TestMajorityModel:
    def test_unanimous(self):
        model = np.arange(4.0)
        np.testing.assert_allclose(majority_model([model, model, model]), model)

    def test_majority_beats_liar(self):
        model = np.ones(5)
        garbage = 100.0 * np.ones(5)
        np.testing.assert_allclose(majority_model([model, model, model, garbage]), model)

    def test_no_quorum_raises(self):
        proposals = [np.zeros(3), np.ones(3), 2 * np.ones(3)]
        with pytest.raises(TrainingError):
            majority_model(proposals)

    def test_empty_raises(self):
        with pytest.raises(TrainingError):
            majority_model([])

    def test_custom_quorum(self):
        proposals = [np.zeros(3), np.zeros(3), np.ones(3)]
        np.testing.assert_allclose(majority_model(proposals, quorum=2), np.zeros(3))
        with pytest.raises(ConfigurationError):
            majority_model(proposals, quorum=5)

    def test_exact_path_never_calls_allclose(self, monkeypatch):
        """The atol=0 vote groups by fingerprint — no pairwise allclose loop."""
        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("exact-equality voting must not call np.allclose")

        monkeypatch.setattr(np, "allclose", boom)
        model = np.arange(6.0)
        np.testing.assert_array_equal(majority_model([model, model, model]), model)
        # The tolerance fallback still goes through the pairwise loop.
        with pytest.raises(AssertionError, match="must not call"):
            majority_model([model, model, model], atol=1e-9)

    def test_exact_path_negative_zero_groups_with_positive_zero(self):
        # -0.0 == +0.0 under allclose despite different bit patterns; the
        # fingerprint canonicalisation must keep them in one group.
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([-0.0, 1.0, 2.0])
        np.testing.assert_array_equal(majority_model([a, b, np.ones(3)], quorum=2), a)

    def test_exact_path_nan_proposal_matches_nothing(self):
        # equal_nan=False: a NaN proposal does not even match itself, so two
        # bit-identical NaN vectors must not form a quorum.
        nan_vec = np.array([np.nan, 1.0, 2.0])
        good = np.zeros(3)
        np.testing.assert_array_equal(
            majority_model([nan_vec, nan_vec.copy(), good, good.copy()], quorum=2), good
        )
        with pytest.raises(TrainingError):
            majority_model([nan_vec, nan_vec.copy(), np.ones(3)], quorum=2)

    def test_exact_path_matches_pairwise_loop_tie_break(self):
        # argmax tie-breaking (first index of the max count) must match the
        # legacy loop: with two equal-sized groups the earlier proposal wins.
        a, b = np.zeros(4), np.ones(4)
        np.testing.assert_array_equal(majority_model([a, b, a, b], quorum=2), a)
        np.testing.assert_array_equal(majority_model([b, a, b, a], quorum=2), b)

    def test_exact_path_microbench(self):
        """Fingerprint grouping keeps a wide vote off the O(r^2 d) cliff.

        40 replicas x 200k parameters means 1600 pairwise allclose scans for
        the legacy loop; the fingerprint path hashes each vector once.  The
        bound is deliberately loose (slow shared CI runners) but tight
        enough that a reversion to the pairwise loop fails immediately.
        """
        import time

        model = np.arange(200_000, dtype=np.float64)
        proposals = [model.copy() for _ in range(40)]
        start = time.perf_counter()
        winner = majority_model(proposals)
        elapsed = time.perf_counter() - start
        np.testing.assert_array_equal(winner, model)
        assert elapsed < 2.0, f"majority_model took {elapsed:.2f}s for r=40, d=200k"


def make_replicated(num_replicas=4, byzantine=0, dim=6):
    return ReplicatedParameterServer(
        np.zeros(dim),
        MultiKrum(f=1),
        lambda: SGD(learning_rate=0.1),
        num_replicas=num_replicas,
        byzantine_replicas=byzantine,
        rng=0,
    )


def honest_round(dim=6, n=6, step=0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        GradientMessage(worker_id=i, step=step, gradient=np.ones(dim) + 0.01 * rng.standard_normal(dim))
        for i in range(n)
    ]


class TestReplicatedParameterServer:
    def test_bft_requirement(self):
        with pytest.raises(ConfigurationError):
            make_replicated(num_replicas=3, byzantine=1)
        make_replicated(num_replicas=4, byzantine=1)

    def test_correct_replicas_stay_in_agreement(self):
        server = make_replicated()
        for step in range(3):
            server.apply_round(honest_round(step=step, seed=step))
        models = [replica.parameters for replica in server.replicas]
        for model in models[1:]:
            np.testing.assert_allclose(model, models[0])

    def test_quorum_model_ignores_byzantine_replica(self):
        clean = make_replicated(num_replicas=4, byzantine=0)
        compromised = make_replicated(num_replicas=4, byzantine=1)
        messages = honest_round()
        clean_model = clean.apply_round(messages)
        compromised_model = compromised.apply_round(messages)
        np.testing.assert_allclose(compromised_model, clean_model)

    def test_worker_view_matches_parameters(self):
        server = make_replicated(byzantine=1)
        server.apply_round(honest_round())
        np.testing.assert_allclose(server.worker_view(), server.parameters)

    def test_broadcast_contains_garbage_from_byzantine_replica(self):
        server = make_replicated(num_replicas=4, byzantine=1)
        proposals = server.broadcast()
        # The first replica lies; its proposal is far from the (zero) true model.
        assert np.abs(proposals[0]).max() > 10
        np.testing.assert_allclose(proposals[1], 0.0)

    def test_too_many_byzantine_replicas_break_the_quorum(self):
        # Constructing such a deployment is refused up-front...
        with pytest.raises(ConfigurationError):
            make_replicated(num_replicas=4, byzantine=2)

    def test_step_and_dim(self):
        server = make_replicated()
        assert server.dim == 6
        assert server.step == 0
        server.apply_round(honest_round())
        assert server.step == 1

    def test_replicas_own_private_rule_instances(self):
        """Regression: replicas must not share one GAR object.

        Rules carry per-instance state (``distance_provider``); a shared
        object would route every replica's distance queries through one
        provider and cross-contaminate its hit/miss accounting.
        """
        shared = MultiKrum(f=1)
        server = ReplicatedParameterServer(
            np.zeros(6), shared, lambda: SGD(learning_rate=0.1),
            num_replicas=4, rng=0,
        )
        rules = [replica.gar for replica in server.replicas]
        assert len({id(rule) for rule in rules}) == 4
        assert shared not in rules
        providers = [rule.distance_provider for rule in rules]
        assert all(provider is not None for provider in providers)
        assert len({id(provider) for provider in providers}) == 4
        # The caller's rule object is left untouched.
        assert shared.distance_provider is None

    def test_replica_providers_account_independently(self):
        server = make_replicated()
        messages = honest_round()
        server.apply_round(messages)
        server.apply_round(messages)
        for replica in server.replicas:
            provider = replica.gar.distance_provider
            # One distance query per round, per replica — a shared provider
            # would have seen every replica's queries (and its whole-matrix
            # memo would have hidden the re-query from the accounting).
            assert provider.total_queries == 2
            # The second, byte-identical round is served from the replica's
            # own cache: every pair is a hit, nothing new is charged.
            assert provider.total_hit_pairs > 0
            assert provider.total_miss_pairs == provider.total_hit_pairs

    def test_descends_towards_gradient_direction(self):
        server = make_replicated(byzantine=1)
        model_before = server.parameters
        model_after = server.apply_round(honest_round())
        # One SGD step against an all-ones gradient moves every coordinate down.
        assert (model_after < model_before).all()
