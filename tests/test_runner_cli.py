"""Tests for the command-line runner (repro.runner)."""

import io
import json

import pytest

from repro import runner
from repro.exceptions import ConfigurationError


BASE_ARGS = [
    "--experiment", "mlp",
    "--experiment-args", "input_dim:8 num_classes:3 hidden:12",
    "--dataset", "blobs",
    "--dataset-args", "num_train:200 num_test:50 num_classes:3 dim:8",
    "--nb-workers", "5",
    "--batch-size", "16",
    "--max-step", "10",
    "--evaluation-delta", "5",
    "--learning-rate", "5e-3",
    "--seed", "0",
]


class TestParser:
    def test_defaults(self):
        args = runner.build_parser().parse_args([])
        assert args.aggregator == "multi-krum"
        assert args.nb_workers == 11
        assert args.optimizer == "rmsprop"

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(SystemExit):
            runner.build_parser().parse_args(["--optimizer", "lbfgs"])

    def test_kv_parsing(self):
        parsed = runner._parse_kv_args("a:1 b:2.5 c:hello")
        assert parsed == {"a": 1, "b": 2.5, "c": "hello"}

    def test_kv_parsing_malformed(self):
        with pytest.raises(ConfigurationError):
            runner._parse_kv_args("novalue")

    def test_kv_parsing_empty(self):
        assert runner._parse_kv_args("") == {}


class TestListings:
    def test_empty_aggregator_lists_options(self):
        stream = io.StringIO()
        result = runner.run(["--aggregator", ""], stream=stream)
        assert result == {"listed": "aggregators"}
        assert "multi-krum" in stream.getvalue()

    def test_empty_experiment_lists_models(self):
        stream = io.StringIO()
        result = runner.run(["--experiment", ""], stream=stream)
        assert result == {"listed": "experiments"}
        assert "cifar-cnn" in stream.getvalue()

    def test_empty_dataset_lists_datasets(self):
        stream = io.StringIO()
        result = runner.run(["--dataset", ""], stream=stream)
        assert result == {"listed": "datasets"}
        assert "blobs" in stream.getvalue()

    def test_unknown_attack_rejected(self):
        with pytest.raises(ConfigurationError):
            runner.run(BASE_ARGS + ["--attack", "ddos"], stream=io.StringIO())


class TestClusterFlagHardening:
    def test_staleness_bound_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="--staleness-bound"):
            runner.run(
                BASE_ARGS + ["--sync-policy", "bounded-staleness", "--staleness-bound", "0"],
                stream=io.StringIO(),
            )

    def test_negative_staleness_bound_rejected(self):
        with pytest.raises(ConfigurationError, match="--staleness-bound"):
            runner.run(BASE_ARGS + ["--staleness-bound", "-3"], stream=io.StringIO())

    def test_quorum_size_below_resilience_floor_rejected(self):
        # n=5, f=1 -> the quorum must stay within [4, 5].
        with pytest.raises(ConfigurationError, match=r"outside \[n - f, n\]"):
            runner.run(
                BASE_ARGS + ["--nb-decl-byz", "1", "--sync-policy", "quorum",
                             "--quorum-size", "3"],
                stream=io.StringIO(),
            )

    def test_quorum_size_above_cluster_size_rejected(self):
        with pytest.raises(ConfigurationError, match=r"outside \[n - f, n\]"):
            runner.run(
                BASE_ARGS + ["--sync-policy", "quorum", "--quorum-size", "6"],
                stream=io.StringIO(),
            )

    def test_quorum_size_in_range_accepted(self):
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "average", "--sync-policy", "quorum",
                         "--quorum-size", "5"],
            stream=io.StringIO(),
        )
        assert not summary["diverged"]

    def test_async_mode_with_full_sync_rejected(self):
        with pytest.raises(ConfigurationError, match="--mode async"):
            runner.run(BASE_ARGS + ["--mode", "async"], stream=io.StringIO())

    def test_flag_validation_happens_before_building(self):
        # The mode/policy conflict must be reported even when other arguments
        # (an unknown dataset here) would also fail later.
        with pytest.raises(ConfigurationError, match="--mode async"):
            runner.run(
                BASE_ARGS + ["--mode", "async", "--dataset", "imagenet-64k"],
                stream=io.StringIO(),
            )


class TestCodecFlagValidation:
    """The --codec / --codec-k / --quantize-bits / --link-sharing matrix."""

    def test_codec_listing(self):
        stream = io.StringIO()
        result = runner.run(["--codec", ""], stream=stream)
        assert result == {"listed": "codecs"}
        assert "top-k" in stream.getvalue()
        assert "qsgd" in stream.getvalue()

    def test_codec_k_without_sparsifying_codec_rejected(self):
        with pytest.raises(ConfigurationError, match="--codec-k"):
            runner.run(BASE_ARGS + ["--codec-k", "10"], stream=io.StringIO())

    def test_codec_k_with_qsgd_rejected(self):
        with pytest.raises(ConfigurationError, match="--codec-k"):
            runner.run(
                BASE_ARGS + ["--codec", "qsgd", "--codec-k", "10"],
                stream=io.StringIO(),
            )

    def test_topk_without_codec_k_rejected(self):
        with pytest.raises(ConfigurationError, match="requires --codec-k"):
            runner.run(BASE_ARGS + ["--codec", "top-k"], stream=io.StringIO())

    def test_non_positive_codec_k_rejected(self):
        with pytest.raises(ConfigurationError, match="--codec-k"):
            runner.run(
                BASE_ARGS + ["--codec", "top-k", "--codec-k", "0"],
                stream=io.StringIO(),
            )

    def test_quantize_bits_without_qsgd_rejected(self):
        with pytest.raises(ConfigurationError, match="--quantize-bits"):
            runner.run(BASE_ARGS + ["--quantize-bits", "4"], stream=io.StringIO())
        with pytest.raises(ConfigurationError, match="--quantize-bits"):
            runner.run(
                BASE_ARGS + ["--codec", "top-k", "--codec-k", "5",
                             "--quantize-bits", "4"],
                stream=io.StringIO(),
            )

    def test_quantize_bits_out_of_range_rejected(self):
        for bits in ("0", "17", "-3"):
            with pytest.raises(ConfigurationError, match=r"\[1, 16\]"):
                runner.run(
                    BASE_ARGS + ["--codec", "qsgd", "--quantize-bits", bits],
                    stream=io.StringIO(),
                )

    def test_unknown_link_sharing_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            runner.build_parser().parse_args(["--link-sharing", "weighted"])

    def test_topk_run_with_fair_sharing(self):
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "average", "--codec", "top-k",
                         "--codec-k", "10", "--link-sharing", "fair"],
            stream=io.StringIO(),
        )
        assert not summary["diverged"]
        assert summary["configuration"]["codec"] == "top-k"
        assert summary["configuration"]["link_sharing"] == "fair"
        assert summary["wire"]["wire_bytes"] > 0
        assert summary["wire"]["queueing_delay_seconds"] > 0

    def test_qsgd_run(self):
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "average", "--codec", "qsgd",
                         "--quantize-bits", "6"],
            stream=io.StringIO(),
        )
        assert not summary["diverged"]
        assert summary["configuration"]["quantize_bits"] == 6


class TestBroadcastAndLinkProfileFlags:
    """The --broadcast-codec / --broadcast-k / --broadcast-bits / --link-profile matrix."""

    def test_broadcast_codec_listing(self):
        stream = io.StringIO()
        result = runner.run(["--broadcast-codec", ""], stream=stream)
        assert result == {"listed": "broadcast-codecs"}
        assert "identity" in stream.getvalue()

    def test_broadcast_k_without_codec_rejected(self):
        with pytest.raises(ConfigurationError, match="--broadcast-k"):
            runner.run(BASE_ARGS + ["--broadcast-k", "10"], stream=io.StringIO())

    def test_broadcast_bits_without_codec_rejected(self):
        with pytest.raises(ConfigurationError, match="--broadcast-bits"):
            runner.run(BASE_ARGS + ["--broadcast-bits", "4"], stream=io.StringIO())

    def test_broadcast_k_with_identity_rejected(self):
        with pytest.raises(ConfigurationError, match="--broadcast-k"):
            runner.run(
                BASE_ARGS + ["--broadcast-codec", "identity", "--broadcast-k", "5"],
                stream=io.StringIO(),
            )

    def test_topk_broadcast_without_k_rejected(self):
        with pytest.raises(ConfigurationError, match="requires --broadcast-k"):
            runner.run(
                BASE_ARGS + ["--broadcast-codec", "top-k"], stream=io.StringIO()
            )

    def test_broadcast_bits_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\[1, 16\]"):
            runner.run(
                BASE_ARGS + ["--broadcast-codec", "qsgd", "--broadcast-bits", "20"],
                stream=io.StringIO(),
            )

    def test_unknown_broadcast_codec_rejected(self):
        with pytest.raises(ConfigurationError, match="broadcast codec"):
            runner.run(
                BASE_ARGS + ["--broadcast-codec", "gzip"], stream=io.StringIO()
            )

    def test_malformed_link_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="link profile"):
            runner.run(
                BASE_ARGS + ["--link-profile", "wan:fast"], stream=io.StringIO()
            )

    def test_delta_broadcast_run_on_wan_profile(self):
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "average",
                         "--broadcast-codec", "top-k", "--broadcast-k", "10",
                         "--link-profile", "wan:2x1mbit", "--link-sharing", "fair"],
            stream=io.StringIO(),
        )
        assert not summary["diverged"]
        assert summary["configuration"]["broadcast_codec"] == "top-k"
        assert summary["configuration"]["link_profile"] == "wan:2x1mbit"
        assert summary["wire"]["bytes_received_delta"] > 0
        assert summary["wire"]["downlink_bytes"] > 0
        assert set(summary["region_queueing"]) == {"region0", "region1"}

    def test_identity_broadcast_matches_raw_summary(self):
        raw = runner.run(BASE_ARGS + ["--aggregator", "average"],
                         stream=io.StringIO())
        delta = runner.run(
            BASE_ARGS + ["--aggregator", "average", "--broadcast-codec", "identity"],
            stream=io.StringIO(),
        )
        assert raw["final_accuracy"] == delta["final_accuracy"]
        assert raw["total_time"] == delta["total_time"]
        assert raw["wire"]["bytes_received"] == delta["wire"]["bytes_received"]


class TestServerComputeFlags:
    def test_server_cores_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="--server-cores"):
            runner.run(BASE_ARGS + ["--server-cores", "0"], stream=io.StringIO())

    def test_measured_aggregation_with_determinism_check_rejected(self):
        # Regression (PR-5): measured mode times the host wall-clock inside
        # the simulation — silently machine-dependent, so replay verification
        # must refuse it rather than report spurious nondeterminism.
        with pytest.raises(ConfigurationError, match="--measured-aggregation"):
            runner.run(
                BASE_ARGS + ["--measured-aggregation", "--determinism-check"],
                stream=io.StringIO(),
            )

    def test_measured_plus_determinism_rejected_before_building(self):
        # Bad flag combinations must fail fast even with an absurd workload.
        with pytest.raises(ConfigurationError):
            runner.run(
                BASE_ARGS
                + ["--measured-aggregation", "--determinism-check",
                   "--nb-workers", "100000", "--max-step", "10000000"],
                stream=io.StringIO(),
            )

    def test_distance_cache_run_matches_uncached_accuracy(self):
        base = runner.run(
            BASE_ARGS + ["--aggregator", "multi-krum"], stream=io.StringIO()
        )
        cached = runner.run(
            BASE_ARGS + ["--aggregator", "multi-krum", "--distance-cache", "on",
                         "--server-cores", "4"],
            stream=io.StringIO(),
        )
        # Lock-step gradients are bit-identical with the cache on; only the
        # simulated aggregation pricing changes.
        assert cached["final_accuracy"] == base["final_accuracy"]
        assert cached["distance_cache"]["miss_pairs"] > 0
        assert base["distance_cache"]["miss_pairs"] == 0
        assert (
            cached["latency_breakdown"]["aggregation"]
            < base["latency_breakdown"]["aggregation"]
        )
        assert cached["configuration"]["server_cores"] == 4
        assert cached["configuration"]["distance_cache"] == "on"

    def test_determinism_check_passes_on_deterministic_run(self):
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "average", "--determinism-check"],
            stream=io.StringIO(),
        )
        assert summary["determinism_check"] == "ok"

    def test_measured_aggregation_run(self):
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "multi-krum", "--measured-aggregation"],
            stream=io.StringIO(),
        )
        assert summary["configuration"]["measured_aggregation"] is True
        assert summary["latency_breakdown"]["aggregation"] > 0

    def test_gar_selection_loop_matches_vectorized(self):
        """Both selection modes run the identical trajectory end to end."""
        args = BASE_ARGS + [
            "--aggregator", "bulyan",
            "--nb-workers", "11",
            "--nb-real-byz", "2",
            "--nb-decl-byz", "2",
            "--attack", "sign-flip",
        ]
        summaries = {
            mode: runner.run(args + ["--gar-selection", mode], stream=io.StringIO())
            for mode in ("vectorized", "loop")
        }
        assert summaries["vectorized"]["configuration"]["gar_selection"] == "vectorized"
        assert summaries["loop"]["configuration"]["gar_selection"] == "loop"
        assert (
            summaries["vectorized"]["final_accuracy"]
            == summaries["loop"]["final_accuracy"]
        )
        assert summaries["vectorized"]["total_time"] == summaries["loop"]["total_time"]


class TestEndToEnd:
    def test_average_run(self, tmp_path):
        stream = io.StringIO()
        output = tmp_path / "result.json"
        summary = runner.run(
            BASE_ARGS + ["--aggregator", "average", "--output", str(output)], stream=stream
        )
        assert summary["num_updates"] == 10
        assert not summary["diverged"]
        assert json.loads(output.read_text())["configuration"]["aggregator"] == "average"
        assert "final accuracy" in stream.getvalue()

    def test_byzantine_run_with_multikrum(self):
        stream = io.StringIO()
        summary = runner.run(
            BASE_ARGS
            + [
                "--aggregator", "multi-krum",
                "--nb-workers", "9",
                "--nb-real-byz", "2",
                "--nb-decl-byz", "2",
                "--attack", "reversed-gradient",
            ],
            stream=stream,
        )
        assert not summary["diverged"]
        assert summary["configuration"]["attack"] == "reversed-gradient"

    def test_checkpointing_run(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpts"
        summary = runner.run(
            BASE_ARGS
            + [
                "--aggregator", "average",
                "--checkpoint-delta", "5",
                "--checkpoint-dir", str(checkpoint_dir),
            ],
            stream=io.StringIO(),
        )
        assert summary["num_updates"] == 10
        checkpoints = sorted(checkpoint_dir.glob("*.npz"))
        assert len(checkpoints) == 2

    def test_summary_csv_export(self, tmp_path):
        csv_path = tmp_path / "series.csv"
        runner.run(
            BASE_ARGS + ["--aggregator", "average", "--summary-csv", str(csv_path)],
            stream=io.StringIO(),
        )
        assert csv_path.exists()
        assert "accuracy" in csv_path.read_text().splitlines()[0]

    def test_async_mode_run(self, tmp_path):
        output = tmp_path / "async.json"
        summary = runner.run(
            BASE_ARGS
            + [
                "--aggregator", "multi-krum",
                "--nb-workers", "9",
                "--nb-decl-byz", "2",
                "--mode", "async",
                "--sync-policy", "quorum",
                "--max-version-lag", "3",
                "--straggler-model", "pareto",
                "--output", str(output),
            ],
            stream=io.StringIO(),
        )
        assert not summary["diverged"]
        assert summary["configuration"]["mode"] == "async"
        assert summary["configuration"]["max_version_lag"] == 3
        payload = json.loads(output.read_text())
        assert payload["server_utilisation"]["busy_fraction"] > 0
        assert all(int(lag) <= 3 for lag in payload["version_lag_histogram"])

    def test_lossy_run(self):
        summary = runner.run(
            BASE_ARGS
            + [
                "--aggregator", "multi-krum",
                "--nb-workers", "9",
                "--nb-decl-byz", "2",
                "--lossy-links", "2",
                "--drop-rate", "0.1",
                "--recovery-policy", "random-fill",
            ],
            stream=io.StringIO(),
        )
        assert not summary["diverged"]

    def test_main_returns_error_code_on_bad_configuration(self, monkeypatch):
        monkeypatch.setattr("sys.argv", ["repro.runner", "--attack", "ddos"])
        assert runner.main() == 1
