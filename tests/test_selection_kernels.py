"""Vectorised selection kernels vs the retained per-candidate references.

PR 8 replaced the Python selection loops of Multi-Krum, Bulyan and Brute
with batched kernels (``multi_krum_select`` / ``bulyan_select`` /
``brute_select``).  The loop implementations are retained as the
``selection_mode="loop"`` paths and double as oracles here: the property
suite drives both through adversarial shapes — exact ties from duplicate
rows and integer-valued coordinates (integer squared distances make every
partial sum exact in any summation order, so ties are provable ties),
quarantined non-finite rows saturating at ``HUGE``, the minimum-``n``
resilience edges, and ``f = 0`` — asserting winner-for-winner identical
selections.  The Multi-Krum stable tie-break fix is pinned by a frozen
construction whose boundary tie the old ``argpartition`` selection left
to the partition's internal arrangement.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute import Brute
from repro.core.bulyan import Bulyan, _bulyan_selection
from repro.core.kernels import (
    brute_select,
    bulyan_select,
    combination_table,
    multi_krum_select,
    pairwise_squared_distances,
)
from repro.core.krum import MultiKrum
from repro.exceptions import ResilienceConditionError


@st.composite
def selection_matrices(draw, min_n=3, max_n=16):
    """(n, d) matrices biased towards tie-heavy and quarantined shapes."""
    n = draw(st.integers(min_n, max_n))
    d = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31))
    kind = draw(st.sampled_from(["normal", "integer", "duplicates"]))
    rng = np.random.default_rng(seed)
    if kind == "normal":
        matrix = rng.standard_normal((n, d))
    elif kind == "integer":
        # 0/1/2-valued coordinates: squared distances are small integers,
        # exactly representable, so equal scores are exact ties.
        matrix = rng.integers(0, 3, size=(n, d)).astype(np.float64)
    else:
        base = rng.integers(0, 2, size=(max(1, n // 3), d)).astype(np.float64)
        matrix = base[rng.integers(0, base.shape[0], size=n)]
    num_laced = draw(st.integers(0, 3))
    if num_laced:
        filler = draw(st.sampled_from([np.nan, np.inf, -np.inf]))
        for row in rng.choice(n, size=min(num_laced, n), replace=False):
            matrix[row] = filler
    return matrix


# --------------------------------------------------------------------- Bulyan
@settings(max_examples=80, deadline=None)
@given(matrix=selection_matrices(min_n=3, max_n=16), f=st.integers(0, 3))
def test_bulyan_select_matches_loop_reference(matrix, f):
    n = matrix.shape[0]
    if n - f - 2 < 1:
        return
    theta = n - 2 * f
    if theta < 1:
        return
    distances = pairwise_squared_distances(matrix)
    loop = _bulyan_selection(matrix, f, theta, distances=distances)
    vectorised = bulyan_select(distances, f, theta)
    np.testing.assert_array_equal(vectorised, loop)


def test_bulyan_select_all_duplicate_rows_breaks_every_tie_like_the_loop():
    # All-zero gradients: every distance is exactly 0, every round of the
    # extraction is an exact tie, so the whole winner sequence is decided
    # by tie-breaking alone.
    matrix = np.zeros((9, 3))
    distances = pairwise_squared_distances(matrix)
    theta = 9 - 2 * 1
    loop = _bulyan_selection(matrix, 1, theta, distances=distances)
    vectorised = bulyan_select(distances, 1, theta)
    np.testing.assert_array_equal(vectorised, loop)
    np.testing.assert_array_equal(vectorised, np.arange(theta))


def test_bulyan_select_minimum_n_edge():
    # n = 4f + 3 exactly (the rule's resilience floor) for each small f.
    for f in (0, 1, 2):
        n = 4 * f + 3
        rng = np.random.default_rng(f)
        matrix = rng.standard_normal((n, 4))
        distances = pairwise_squared_distances(matrix)
        theta = n - 2 * f
        np.testing.assert_array_equal(
            bulyan_select(distances, f, theta),
            _bulyan_selection(matrix, f, theta, distances=distances),
        )


def test_bulyan_select_rejects_invalid_shapes():
    distances = pairwise_squared_distances(np.zeros((5, 2)))
    with pytest.raises(ResilienceConditionError):
        bulyan_select(distances, 5, 1)  # n - f - 2 < 1
    with pytest.raises(ResilienceConditionError):
        bulyan_select(distances, 0, 6)  # theta > n


@settings(max_examples=30, deadline=None)
@given(matrix=selection_matrices(min_n=7, max_n=15), f=st.integers(0, 2))
def test_bulyan_rule_modes_agree_end_to_end(matrix, f):
    n = matrix.shape[0]
    if n < 4 * f + 3:
        return
    loop_rule = Bulyan(f=f)
    loop_rule.selection_mode = "loop"
    vec_rule = Bulyan(f=f)
    vec_rule.selection_mode = "vectorized"
    try:
        loop_result = loop_rule.aggregate_detailed(matrix)
    except Exception as exc:  # noqa: BLE001 - both modes must fail alike
        with pytest.raises(type(exc)):
            vec_rule.aggregate_detailed(matrix)
        return
    vec_result = vec_rule.aggregate_detailed(matrix)
    np.testing.assert_array_equal(vec_result.gradient, loop_result.gradient)
    np.testing.assert_array_equal(
        vec_result.selected_indices, loop_result.selected_indices
    )


# ---------------------------------------------------------------------- Brute
@settings(max_examples=60, deadline=None)
@given(matrix=selection_matrices(min_n=3, max_n=10), f=st.integers(0, 3))
def test_brute_select_matches_loop_reference(matrix, f):
    n = matrix.shape[0]
    subset_size = n - f
    if subset_size < 1 or n < 2 * f + 1:
        return
    distances = pairwise_squared_distances(matrix)
    loop = Brute._select_loop(distances, n, subset_size)
    vectorised, diameter = brute_select(distances, subset_size)
    np.testing.assert_array_equal(vectorised, loop)
    if subset_size >= 2:
        expected = distances[np.ix_(loop, loop)].max()
        assert diameter == expected or (np.isinf(diameter) and np.isinf(expected))


def test_brute_select_all_infinite_diameters_keeps_the_first_subset():
    # Every row quarantined: all pairwise distances are +inf, so every
    # subset ties at an infinite diameter and both paths must keep the
    # lexicographically first one (the rule then raises AggregationError
    # on the non-finite selection).
    matrix = np.full((5, 2), np.nan)
    distances = pairwise_squared_distances(matrix)
    loop = Brute._select_loop(distances, 5, 3)
    vectorised, diameter = brute_select(distances, 3)
    np.testing.assert_array_equal(vectorised, loop)
    np.testing.assert_array_equal(vectorised, [0, 1, 2])
    assert np.isinf(diameter)


@settings(max_examples=25, deadline=None)
@given(matrix=selection_matrices(min_n=3, max_n=9), f=st.integers(0, 2))
def test_brute_rule_modes_agree_end_to_end(matrix, f):
    n = matrix.shape[0]
    if n < 2 * f + 1:
        return
    loop_rule = Brute(f=f)
    loop_rule.selection_mode = "loop"
    vec_rule = Brute(f=f)
    vec_rule.selection_mode = "vectorized"
    try:
        loop_result = loop_rule.aggregate_detailed(matrix)
    except Exception as exc:  # noqa: BLE001 - both modes must fail alike
        with pytest.raises(type(exc)):
            vec_rule.aggregate_detailed(matrix)
        return
    vec_result = vec_rule.aggregate_detailed(matrix)
    np.testing.assert_array_equal(vec_result.gradient, loop_result.gradient)
    np.testing.assert_array_equal(
        vec_result.selected_indices, loop_result.selected_indices
    )


# ----------------------------------------------------------------- Multi-Krum
def test_multi_krum_select_orders_ties_by_index():
    scores = np.array([2.0, 1.0, 1.0, 3.0, 1.0])
    np.testing.assert_array_equal(multi_krum_select(scores, 2), [1, 2])
    np.testing.assert_array_equal(multi_krum_select(scores, 3), [1, 2, 4])
    np.testing.assert_array_equal(multi_krum_select(scores, 5), [1, 2, 4, 0, 3])
    with pytest.raises(ResilienceConditionError):
        multi_krum_select(scores, 0)
    with pytest.raises(ResilienceConditionError):
        multi_krum_select(scores, 6)


def test_multi_krum_boundary_tie_regression():
    """Frozen pin of the stable tie-break fix.

    Four copies of the zero vector and three copies of ``e1`` give exact
    integer Krum scores ``[1, 1, 1, 1, 2, 2, 2]`` (f=1: each score sums
    the 4 smallest of 6 integer squared distances).  With ``m = 2`` the
    selection boundary cuts straight through the four-way tie; the stable
    rule must keep the two *lowest* indices, where the previous
    ``argpartition`` selection could legally return any two of the four.
    """
    matrix = np.zeros((7, 3))
    matrix[4:, 0] = 1.0
    result = MultiKrum(f=1, m=2).aggregate_detailed(matrix)
    np.testing.assert_array_equal(result.selected_indices, [0, 1])
    np.testing.assert_array_equal(result.scores, [1, 1, 1, 1, 2, 2, 2])
    np.testing.assert_array_equal(result.gradient, np.zeros(3))


# ---------------------------------------------------------- combination table
@settings(max_examples=60, deadline=None)
@given(n=st.integers(0, 10), k=st.integers(0, 10))
def test_combination_table_matches_itertools(n, k):
    if k > n:
        with pytest.raises(ResilienceConditionError):
            combination_table(n, k)
        return
    table = combination_table(n, k)
    if k == 0:
        # itertools yields one empty tuple; the table is one empty row.
        assert table.shape == (1, 0)
        return
    expected = np.array(list(combinations(range(n), k)), dtype=np.intp)
    expected = expected.reshape(-1, k)  # normalise the empty-result shape
    assert table.shape == expected.shape
    np.testing.assert_array_equal(table, expected)
