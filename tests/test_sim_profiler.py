"""The profiler's split must reconstruct the step in both trainer modes.

The per-subsystem breakdown is the instrument the perf matrix reads, so
its arithmetic has to be trustworthy: section seconds sum to
``accounted_s``, ``accounted_s + unaccounted_s`` reconstructs the wall
clock, shares live in [0, 1] and sum to one, and only canonical subsystem
names appear.  The sections also bracket *disjoint* stages, so the
accounted total can never exceed the measured wall clock (beyond timer
granularity).  Both the lock-step and the async event-stream trainers are
driven under a live profiler, including the regime-specific brackets:
``attack`` under an active adversary and ``link_reschedule`` on contended
async links.
"""

from __future__ import annotations

import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.profiler import SUBSYSTEMS, SimProfiler
from repro.cluster.trainer import TrainerConfig
from repro.data.datasets import gaussian_blobs


def _profiled_run(**overrides):
    profiler = SimProfiler()
    kwargs = dict(
        model="logistic",
        model_kwargs={"input_dim": 10, "num_classes": 5},
        dataset=gaussian_blobs(num_train=400, num_classes=5, dim=10, rng=3),
        gar="median",
        num_workers=12,
        num_byzantine=3,
        attack="sign-flip",
        batch_size=4,
        learning_rate=0.05,
        seed=11,
        vectorized=True,
        profiler=profiler,
    )
    kwargs.update(overrides)
    trainer = build_trainer(**kwargs)
    profiler.start_run()
    try:
        trainer.run(TrainerConfig(max_steps=4, eval_every=0))
    finally:
        profiler.stop_run()
    return profiler.to_dict()


def _assert_split_is_coherent(split):
    assert set(split["subsystems"]) <= set(SUBSYSTEMS)
    seconds = [s["seconds"] for s in split["subsystems"].values()]
    assert all(value >= 0.0 for value in seconds)
    assert sum(seconds) == pytest.approx(split["accounted_s"])
    assert split["accounted_s"] + split["unaccounted_s"] == pytest.approx(
        split["wall_clock_s"]
    )
    # Disjoint brackets: the accounted total cannot exceed the wall clock
    # (small slack for perf_counter granularity around tiny sections).
    assert split["accounted_s"] <= split["wall_clock_s"] * 1.05 + 1e-4
    shares = [s["share"] for s in split["subsystems"].values()]
    assert all(0.0 <= share <= 1.0 for share in shares)
    if split["accounted_s"] > 0:
        assert sum(shares) == pytest.approx(1.0)


def test_sync_split_sums_to_the_wall_clock():
    split = _profiled_run()
    _assert_split_is_coherent(split)
    # The lock-step round always exercises the core brackets.
    for name in ("event_dispatch", "codec", "gar_kernel", "telemetry", "compute"):
        assert split["subsystems"][name]["calls"] > 0, name
    assert split["subsystems"]["attack"]["calls"] > 0


def test_async_split_sums_to_the_wall_clock():
    split = _profiled_run(
        mode="async",
        sync_policy="quorum",
        link_profile="wan:2x10mbit/5ms",
        link_sharing="fair",
    )
    _assert_split_is_coherent(split)
    for name in ("event_dispatch", "codec", "gar_kernel", "compute"):
        assert split["subsystems"][name]["calls"] > 0, name
    # Contended fair-shared links must reschedule in-flight transfers.
    assert split["subsystems"]["link_reschedule"]["calls"] > 0


def test_legacy_loop_reports_the_same_shape():
    """The per-worker loop brackets the same stages as the vectorised path."""
    split = _profiled_run(vectorized=False)
    _assert_split_is_coherent(split)
    assert split["subsystems"]["attack"]["calls"] > 0


@pytest.mark.parametrize("gar_selection", ["vectorized", "loop"])
def test_sync_gar_select_split_fires_for_selection_gars(gar_selection):
    """Selection GARs book their selection stage under ``gar_select``.

    The trainer drains the rules' shared selection clock after each
    ``gar_kernel`` bracket and re-books the seconds, so the split must
    stay coherent (sections disjoint, sums to the wall clock) with both
    the vectorised kernels and the retained loop paths, and the
    re-booking may never drive ``gar_kernel`` negative.
    """
    split = _profiled_run(
        gar="bulyan", num_workers=15, gar_selection=gar_selection
    )
    _assert_split_is_coherent(split)
    assert split["subsystems"]["gar_select"]["calls"] > 0
    assert split["subsystems"]["gar_select"]["seconds"] >= 0.0
    assert split["subsystems"]["gar_kernel"]["seconds"] >= 0.0


@pytest.mark.parametrize("gar_selection", ["vectorized", "loop"])
def test_async_gar_select_split_fires_for_selection_gars(gar_selection):
    split = _profiled_run(
        gar="multi-krum",
        mode="async",
        sync_policy="quorum",
        gar_selection=gar_selection,
    )
    _assert_split_is_coherent(split)
    assert split["subsystems"]["gar_select"]["calls"] > 0
    assert split["subsystems"]["gar_kernel"]["seconds"] >= 0.0


def test_median_books_no_gar_select_time():
    """Non-selection GARs never touch the selection clock."""
    split = _profiled_run(gar="median")
    assert "gar_select" not in split["subsystems"]
