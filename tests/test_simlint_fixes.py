"""Pinning tests for the determinism fixes surfaced by simlint (SIM201/SIM202).

Components that used to fall back to fresh OS entropy when constructed
without an explicit ``rng`` now derive a deterministic per-component seed via
:func:`repro.utils.random.component_seed`.  These tests pin the new contract:

* constructing the same component twice with no rng yields bit-identical
  draws (replayability even for "lazy" construction);
* different components get *different* default streams (no accidental
  coupling through a shared fallback seed);
* an explicit rng still wins (the builder's named-stream tree is untouched).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import RandomGradientAttack
from repro.cluster.codec import QSGDCodec, RandomKCodec, WireFrame
from repro.cluster.network import DelayedChannel, LossyChannel, ReliableChannel
from repro.cluster.cost_model import CostModel
from repro.cluster.packets import Packetizer, RecoveryPolicy
from repro.cluster.replicated_server import ReplicatedParameterServer
from repro.cluster.worker import ByzantineWorker
from repro.core import Average
from repro.optim import SGD
from repro.utils.random import as_rng, component_seed, derive_seed, fresh_rng


# --------------------------------------------------------------- primitives
def test_component_seed_passthrough():
    rng = as_rng(7)
    assert component_seed(rng, "anything") is rng
    assert component_seed(123, "anything") == 123


def test_component_seed_deterministic_and_distinct():
    a1 = component_seed(None, "packetizer")
    a2 = component_seed(None, "packetizer")
    b = component_seed(None, "byzantine-worker")
    assert a1 == a2
    assert a1 != b
    assert a1 == derive_seed(0x51AB, "packetizer")


def test_fresh_rng_returns_generator():
    rng = fresh_rng()
    assert isinstance(rng, np.random.Generator)
    # Two fresh generators are (overwhelmingly likely) independent streams.
    assert fresh_rng().random() != rng.random() or True  # smoke only


# ------------------------------------------------- unseeded reconstruction
def _packetizer_garbage(packetizer: Packetizer) -> np.ndarray:
    packets = packetizer.split(np.arange(512, dtype=np.float64))
    return packetizer.reassemble(packets[:1], 512, in_order=True)


def test_packetizer_unseeded_is_deterministic():
    a = _packetizer_garbage(Packetizer(256, policy=RecoveryPolicy.RANDOM_FILL))
    b = _packetizer_garbage(Packetizer(256, policy=RecoveryPolicy.RANDOM_FILL))
    np.testing.assert_array_equal(a, b)


def test_random_k_codec_unseeded_is_deterministic():
    grad = np.linspace(-1.0, 1.0, 64)
    fa = RandomKCodec(k=8).encode(grad)
    fb = RandomKCodec(k=8).encode(grad)
    np.testing.assert_array_equal(fa.indices, fb.indices)
    np.testing.assert_array_equal(fa.values, fb.values)


def test_qsgd_codec_unseeded_is_deterministic():
    grad = np.linspace(-1.0, 1.0, 64)
    fa = QSGDCodec(bits=2).encode(grad)
    fb = QSGDCodec(bits=2).encode(grad)
    np.testing.assert_array_equal(fa.values, fb.values)


def test_byzantine_worker_unseeded_is_deterministic():
    honest = np.ones((3, 8))
    params = np.zeros(8)
    msgs = []
    for _ in range(2):
        worker = ByzantineWorker(0, RandomGradientAttack(scale=5.0))
        msgs.append(worker.craft_gradient(params, honest, step=0))
    np.testing.assert_array_equal(msgs[0].gradient, msgs[1].gradient)


def test_delayed_channel_unseeded_is_deterministic():
    cost = CostModel()
    frame = WireFrame(dim=8, values=np.ones(8), nbytes=64.0)
    seconds = []
    for _ in range(2):
        channel = DelayedChannel(ReliableChannel(), delay_s=0.1, jitter_s=0.5)
        _, s = channel.transfer_frame(frame, cost)
        seconds.append(s)
    assert seconds[0] == seconds[1]


def test_lossy_channel_unseeded_is_deterministic():
    cost = CostModel()
    values = np.arange(512, dtype=np.float64)
    frame = WireFrame(dim=512, values=values, nbytes=4096.0)
    results = []
    for _ in range(2):
        channel = LossyChannel(drop_rate=0.5, rng=None)
        delivered, _ = channel.transfer_frame(frame, cost)
        results.append(delivered)
    if results[0] is None:
        assert results[1] is None
    else:
        np.testing.assert_array_equal(results[0].values, results[1].values)


def test_replicated_server_unseeded_is_deterministic():
    def build():
        return ReplicatedParameterServer(
            np.zeros(4), Average(), lambda: SGD(learning_rate=0.1),
            num_replicas=4, byzantine_replicas=1,
        )

    a, b = build().broadcast(), build().broadcast()
    np.testing.assert_array_equal(a[0], b[0])


def test_explicit_rng_still_wins():
    grad = np.linspace(-1.0, 1.0, 64)
    fa = RandomKCodec(k=8, rng=99).encode(grad)
    fb = RandomKCodec(k=8, rng=99).encode(grad)
    fc = RandomKCodec(k=8).encode(grad)
    np.testing.assert_array_equal(fa.indices, fb.indices)
    assert not np.array_equal(fa.indices, fc.indices)


# ------------------------------------------------------------ SIM202 fixes
def test_dataset_subset_default_is_deterministic():
    from repro.data.dataset import Dataset

    rng = as_rng(3)
    ds = Dataset(
        train_x=rng.normal(size=(32, 4)), train_y=np.arange(32) % 2,
        test_x=rng.normal(size=(8, 4)), test_y=np.arange(8) % 2,
        name="toy", num_classes=2,
    )
    a = ds.subset(10)
    b = ds.subset(10)
    np.testing.assert_array_equal(a.train_x, b.train_x)


def test_cost_analysis_measure_accepts_seedlike():
    from repro.experiments.cost_analysis import measure_aggregation_time

    t = measure_aggregation_time(Average(), 5, 16, repeats=1)
    assert t >= 0.0
    t2 = measure_aggregation_time(Average(), 5, 16, repeats=1, rng=as_rng(4))
    assert t2 >= 0.0


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
