"""Fixture-corpus driver for the simlint rules (tests/analysis_fixtures/).

Every registered rule code (plus the SIM001 parse-error pseudo-code) has a
``bad/`` tree that must trigger it and a ``good/`` tree that must not; this
module drives both directions, exercises the pragma / baseline / CLI
machinery on synthetic trees, and finally asserts the live ``src/`` tree is
clean under the committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import all_rule_codes, run_analysis
from repro.analysis.baseline import save_baseline
from repro.analysis.cli import main
from repro.analysis.engine import PARSE_ERROR_CODE
from repro.analysis.report import format_github, format_text, to_json_payload

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"

ALL_CODES = sorted(set(all_rule_codes()) | {PARSE_ERROR_CODE})


def _scan(path: Path, **kwargs):
    return run_analysis([path], root=REPO_ROOT, baseline_path=None, **kwargs)


# ------------------------------------------------------------ fixture corpus
@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_triggers_code(code):
    result = _scan(FIXTURES / code / "bad")
    assert code in result.codes(), (
        f"{code}: bad fixture produced {sorted(result.codes())}"
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_does_not_trigger_code(code):
    result = _scan(FIXTURES / code / "good")
    assert code not in result.codes(), (
        f"{code}: good fixture produced {sorted(result.codes())}"
    )


def test_fixture_corpus_covers_every_rule():
    on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
    assert on_disk == set(ALL_CODES)
    for code in ALL_CODES:
        assert list((FIXTURES / code / "bad").rglob("*.py")), f"{code}: no bad files"
        assert list((FIXTURES / code / "good").rglob("*.py")), f"{code}: no good files"


# ------------------------------------------------------------------ pragmas
def _write(tmp_path: Path, body: str) -> Path:
    target = tmp_path / "module.py"
    target.write_text(body, encoding="utf-8")
    return target


def test_pragma_same_line_suppresses(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()  # simlint: disable=SIM101 harness\n")
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert result.codes() == set()
    assert len(result.suppressed) == 1


def test_pragma_comment_line_above_suppresses(tmp_path):
    _write(
        tmp_path,
        "import time\n"
        "# simlint: disable=SIM101 reporting-only wall clock\n"
        "now = time.time()\n",
    )
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert result.codes() == set()


def test_pragma_in_comment_block_above_suppresses(tmp_path):
    _write(
        tmp_path,
        "import time\n"
        "# simlint: disable=SIM101 this wall-clock read is a harness\n"
        "# measurement only; it never feeds back into simulated time.\n"
        "now = time.time()\n",
    )
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert result.codes() == set()


def test_pragma_wrong_code_does_not_suppress(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()  # simlint: disable=SIM301\n")
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert result.codes() == {"SIM101"}


def test_pragma_all_token_suppresses_everything(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()  # simlint: disable=all legacy\n")
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert result.codes() == set()


def test_pragma_on_unrelated_line_does_not_suppress(tmp_path):
    _write(
        tmp_path,
        "import time\n"
        "# simlint: disable=SIM101\n"
        "x = 1\n"
        "now = time.time()\n",
    )
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert result.codes() == {"SIM101"}


# ----------------------------------------------------------------- baseline
def test_baseline_consumes_known_findings(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()\n")
    no_baseline = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    assert len(no_baseline.new_findings) == 1

    baseline = tmp_path / "baseline.json"
    save_baseline(baseline, no_baseline.raw_findings)
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=baseline)
    assert result.ok
    assert len(result.baselined) == 1


def test_baseline_stale_entry_fails_run(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()\n")
    first = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    baseline = tmp_path / "baseline.json"
    save_baseline(baseline, first.raw_findings)

    (tmp_path / "module.py").write_text("now = 0\n", encoding="utf-8")
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=baseline)
    assert not result.ok
    assert result.new_findings == []
    assert len(result.stale_baseline) == 1


def test_baseline_matches_by_source_not_line(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()\n")
    first = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    baseline = tmp_path / "baseline.json"
    save_baseline(baseline, first.raw_findings)

    # Pure line shift: prepend comments; the baseline entry must still match.
    _write(tmp_path, "# header\n# header\nimport time\nnow = time.time()\n")
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=baseline)
    assert result.ok
    assert len(result.baselined) == 1


def test_corrupt_baseline_exits_2(tmp_path, monkeypatch, capsys):
    _write(tmp_path, "x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 99, "findings": []}), encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["module.py", "--baseline", str(baseline)]) == 2
    assert "simlint" in capsys.readouterr().err


# ---------------------------------------------------------------------- CLI
def test_cli_clean_tree_exits_0(tmp_path, monkeypatch, capsys):
    _write(tmp_path, "x = 1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["module.py", "--no-baseline"]) == 0


def test_cli_findings_exit_1(tmp_path, monkeypatch, capsys):
    _write(tmp_path, "import time\nnow = time.time()\n")
    monkeypatch.chdir(tmp_path)
    assert main(["module.py", "--no-baseline"]) == 1
    assert "SIM101" in capsys.readouterr().out


def test_cli_missing_path_exits_2(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit) as exc:
        main(["no-such-dir"])
    assert exc.value.code == 2


def test_cli_update_baseline_roundtrip(tmp_path, monkeypatch, capsys):
    _write(tmp_path, "import time\nnow = time.time()\n")
    monkeypatch.chdir(tmp_path)
    assert main(["module.py", "--update-baseline"]) == 0
    assert (tmp_path / ".simlint-baseline.json").exists()
    assert main(["module.py"]) == 0  # baselined now


def test_cli_output_writes_json_artifact(tmp_path, monkeypatch, capsys):
    _write(tmp_path, "import time\nnow = time.time()\n")
    monkeypatch.chdir(tmp_path)
    report = tmp_path / "report.json"
    main(["module.py", "--no-baseline", "--output", str(report)])
    payload = json.loads(report.read_text(encoding="utf-8"))
    assert payload["counts"]["new"] == 1
    assert payload["findings"][0]["code"] == "SIM101"


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in all_rule_codes():
        assert code in out


def test_select_and_ignore(tmp_path):
    _write(tmp_path, "import time\nimport numpy as np\nnow = time.time()\ng = np.random.default_rng(0)\n")
    only_1xx = run_analysis([tmp_path], root=tmp_path, baseline_path=None, select=["SIM1"])
    assert only_1xx.codes() == {"SIM101"}
    without_1xx = run_analysis([tmp_path], root=tmp_path, baseline_path=None, ignore=["SIM1"])
    assert "SIM101" not in without_1xx.codes()
    assert "SIM202" in without_1xx.codes()


# ------------------------------------------------------------------ formats
def test_report_formats_smoke(tmp_path):
    _write(tmp_path, "import time\nnow = time.time()\n")
    result = run_analysis([tmp_path], root=tmp_path, baseline_path=None)
    text = format_text(result)
    assert "SIM101" in text and "module.py" in text
    github = format_github(result)
    assert github.startswith("::error file=")
    payload = to_json_payload(result)
    assert payload["files_scanned"] == 1


# ------------------------------------------------------------- live src tree
def test_simlint_clean_on_live_src():
    """The committed tree must pass simlint under the committed baseline."""
    result = run_analysis(
        [REPO_ROOT / "src"],
        root=REPO_ROOT,
        baseline_path=REPO_ROOT / ".simlint-baseline.json",
    )
    assert result.ok, (
        "simlint found new violations:\n" + format_text(result)
    )
    assert result.stale_baseline == [], "baseline has stale entries"


def test_committed_baseline_is_small_and_justified():
    """The baseline is for grandfathering, not a dumping ground."""
    payload = json.loads(
        (REPO_ROOT / ".simlint-baseline.json").read_text(encoding="utf-8")
    )
    assert payload["version"] == 1
    assert len(payload["findings"]) <= 10


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
