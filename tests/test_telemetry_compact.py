"""Compact telemetry: SoA wire columns must export exactly like the object path.

``TrainingHistory(compact=True)`` replaces the per-worker timeline objects'
per-step attribute bumps with preallocated column arrays — the difference
must be invisible to every consumer: ``to_dict``, the wire summary, the
region summary and the merged per-worker timelines.
"""

import numpy as np
import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.telemetry import TrainingHistory
from repro.cluster.trainer import TrainerConfig
from repro.data.datasets import gaussian_blobs


def _run(compact: bool, **overrides) -> TrainingHistory:
    kwargs = dict(
        model="logistic",
        model_kwargs={"input_dim": 8, "num_classes": 3},
        dataset=gaussian_blobs(num_train=300, num_test=60, num_classes=3, dim=8, rng=2),
        gar="median",
        num_workers=9,
        num_byzantine=2,
        attack="sign-flip",
        codec="top-k",
        codec_k=6,
        batch_size=8,
        learning_rate=0.05,
        seed=17,
        compact_telemetry=compact,
    )
    kwargs.update(overrides)
    trainer = build_trainer(**kwargs)
    return trainer.run(TrainerConfig(max_steps=6, eval_every=3))


def test_compact_history_exports_identically():
    loop = _run(compact=False)
    compact = _run(compact=True)
    assert compact.compact and not loop.compact
    assert compact.to_dict() == loop.to_dict()


def test_compact_history_exports_identically_with_lossy_links_and_wan():
    loop = _run(compact=False, lossy_links=3, lossy_drop_rate=0.3,
                link_profile="wan:3x10mbit/5ms", link_sharing="fair")
    compact = _run(compact=True, lossy_links=3, lossy_drop_rate=0.3,
                   link_profile="wan:3x10mbit/5ms", link_sharing="fair")
    assert compact.to_dict() == loop.to_dict()


def test_compact_wire_summary_and_regions_match():
    loop = _run(compact=False, link_profile="wan:3x10mbit/5ms", link_sharing="fair")
    compact = _run(compact=True, link_profile="wan:3x10mbit/5ms", link_sharing="fair")
    assert compact.wire_summary() == loop.wire_summary()
    assert compact.region_queueing_summary() == loop.region_queueing_summary()


def test_compact_merged_timelines_match_object_timelines():
    loop = _run(compact=False)
    compact = _run(compact=True)
    merged_loop = loop.merged_timelines()
    merged_compact = compact.merged_timelines()
    assert set(merged_loop) == set(merged_compact)
    for wid in merged_loop:
        assert merged_compact[wid] == merged_loop[wid], f"worker {wid}"


def test_record_version_lag_batch_matches_singles():
    single = TrainingHistory()
    batched = TrainingHistory()
    lags = [0, 0, 2, 0, 1, 2, 0, np.intp(3)]
    for lag in lags:
        single.record_version_lag(lag)
    batched.record_version_lag_batch(lags)
    assert batched.version_lag_counts == single.version_lag_counts
    batched.record_version_lag_batch([])  # empty round is a no-op
    assert batched.version_lag_counts == single.version_lag_counts
