"""Tests for the analytic results of Appendix B (repro.core.theory)."""

import math

import pytest

from repro.core import theory
from repro.exceptions import ConfigurationError, ResilienceConditionError


class TestResilienceConditions:
    def test_multi_krum_min_workers(self):
        assert theory.multi_krum_min_workers(0) == 3
        assert theory.multi_krum_min_workers(4) == 11
        assert theory.multi_krum_min_workers(8) == 19

    def test_bulyan_min_workers(self):
        assert theory.bulyan_min_workers(0) == 3
        assert theory.bulyan_min_workers(4) == 19

    def test_max_byzantine_weak_matches_paper_deployment(self):
        # 19 workers: up to 8 for Multi-Krum (the Figure 8 setting).
        assert theory.max_byzantine_weak(19) == 8

    def test_max_byzantine_strong_matches_paper_deployment(self):
        # 19 workers: up to 4 for Bulyan (the default f of the evaluation).
        assert theory.max_byzantine_strong(19) == 4

    def test_max_selection_weak(self):
        # m_tilde = n - f - 2.
        assert theory.max_selection_weak(19, 4) == 13
        assert theory.max_selection_weak(11, 2) == 7

    def test_max_selection_strong(self):
        # m_tilde = n - 2f - 2.
        assert theory.max_selection_strong(19, 4) == 9

    def test_max_selection_invalid_raises(self):
        with pytest.raises(ResilienceConditionError):
            theory.max_selection_weak(4, 3)
        with pytest.raises(ResilienceConditionError):
            theory.max_selection_strong(7, 3)

    def test_check_deployment(self):
        theory.check_deployment(19, 4, strong=True)
        theory.check_deployment(11, 4, strong=False)
        with pytest.raises(ResilienceConditionError):
            theory.check_deployment(10, 4, strong=False)
        with pytest.raises(ResilienceConditionError):
            theory.check_deployment(18, 4, strong=True)

    def test_bulyan_iterations_and_beta(self):
        assert theory.bulyan_iterations(19, 4) == 11
        assert theory.bulyan_beta(19, 4) == 3
        assert theory.bulyan_beta(7, 1) == 3


class TestEtaAndAlpha:
    def test_eta_positive_and_growing_with_f(self):
        base = theory.eta(19, 0)
        assert base > 0
        assert theory.eta(19, 4) > base

    def test_eta_formula_matches_manual_computation(self):
        n, f = 19, 4
        m = n - f - 2
        expected = math.sqrt(2 * (n - f + (f * m + f * f * (m + 1)) / (n - 2 * f - 2)))
        assert theory.eta(n, f) == pytest.approx(expected)

    def test_eta_requires_n_greater_than_2f_plus_2(self):
        with pytest.raises(ResilienceConditionError):
            theory.eta(10, 4)

    def test_alpha_bound_valid_case(self):
        alpha = theory.alpha_bound(19, 4, d=100, sigma=0.001, gradient_norm=1.0)
        assert 0 <= alpha < math.pi / 2

    def test_alpha_bound_violated_variance(self):
        with pytest.raises(ResilienceConditionError):
            theory.alpha_bound(19, 4, d=10_000, sigma=1.0, gradient_norm=1.0)

    def test_resilience_condition_holds(self):
        assert theory.resilience_condition_holds(19, 4, 100, 0.001, 1.0)
        assert not theory.resilience_condition_holds(19, 4, 10_000, 1.0, 1.0)


class TestSlowdownAndCosts:
    def test_slowdown_ratio_weak_vs_strong(self):
        weak = theory.slowdown_ratio(19, 4, strong=False)
        strong = theory.slowdown_ratio(19, 4, strong=True)
        assert 0 < strong < weak <= 1.0
        assert weak == pytest.approx(math.sqrt(13 / 19))
        assert strong == pytest.approx(math.sqrt(9 / 19))

    def test_convergence_steps_decrease_with_samples(self):
        assert theory.convergence_steps_estimate(100) < theory.convergence_steps_estimate(10)

    def test_convergence_steps_invalid(self):
        with pytest.raises(ResilienceConditionError):
            theory.convergence_steps_estimate(0)

    def test_aggregation_flops_ordering(self):
        n, f, d = 19, 4, 1_000_000
        avg = theory.aggregation_flops_average(n, d)
        mk = theory.aggregation_flops_multi_krum(n, d)
        bulyan = theory.aggregation_flops_bulyan(n, f, d)
        assert avg < mk < bulyan

    def test_aggregation_flops_quadratic_in_n(self):
        d = 1000
        assert theory.aggregation_flops_multi_krum(20, d) == pytest.approx(
            4 * theory.aggregation_flops_multi_krum(10, d)
        )

    def test_bulyan_flops_decrease_with_f(self):
        # Larger declared f -> fewer selection iterations -> cheaper Bulyan
        # (the Figure 5a counter-intuitive observation).
        d = 100_000
        assert theory.aggregation_flops_bulyan(19, 4, d) < theory.aggregation_flops_bulyan(19, 1, d)

    def test_attack_cost_regression(self):
        cost = theory.attack_cost_regression(100, 10**9, 1e-9)
        assert cost == pytest.approx(1e20)
        with pytest.raises(ResilienceConditionError):
            theory.attack_cost_regression(10, 10, 0.0)

    def test_brute_flops_dominate_multi_krum_for_same_n_d(self):
        # Regression (PR-5): Brute was priced at the Multi-Krum O(n^2 d)
        # bound even though it enumerates C(n, n - f) subsets.
        for n, f in [(7, 0), (11, 2), (15, 3), (19, 4), (25, 12)]:
            for d in (10, 10_000):
                assert theory.aggregation_flops_brute(n, f, d) > (
                    theory.aggregation_flops_multi_krum(n, d)
                ), (n, f, d)

    def test_brute_flops_track_the_subset_enumeration(self):
        n, d = 15, 100
        # The subset-scan term alone: total minus distances minus the
        # winning-subset average.
        for f in (1, 3, 5):
            s = n - f
            scan = (
                theory.aggregation_flops_brute(n, f, d)
                - theory.aggregation_flops_distances(n, d)
                - s * d
            )
            assert scan == pytest.approx(math.comb(n, s) * s * (s - 1) / 2)
        # f = 0 enumerates exactly one subset.
        assert theory.aggregation_flops_brute(n, 0, d) == pytest.approx(
            theory.aggregation_flops_distances(n, d) + n * (n - 1) / 2 + n * d
        )

    def test_brute_flops_invalid(self):
        with pytest.raises(ResilienceConditionError):
            theory.aggregation_flops_brute(3, 3, 10)

    def test_distance_flops_match_multi_krum_bound(self):
        assert theory.aggregation_flops_distances(19, 1000) == (
            theory.aggregation_flops_multi_krum(19, 1000)
        )

    def test_shard_combine_flops(self):
        assert theory.shard_combine_flops(10, 500, 1) == 0.0
        assert theory.shard_combine_flops(10, 500, 4) == pytest.approx(3 * (100 + 500))
        with pytest.raises(ConfigurationError):
            theory.shard_combine_flops(10, 500, 0)


class TestDeploymentSpec:
    def test_paper_deployment(self):
        spec = theory.DeploymentSpec(n=19, f=4, strong=True)
        assert spec.m_max == 9
        assert 0 < spec.slowdown < 1
        assert spec.eta > 0

    def test_invalid_deployment_raises(self):
        with pytest.raises(ResilienceConditionError):
            theory.DeploymentSpec(n=10, f=4, strong=True)

    def test_weak_deployment(self):
        spec = theory.DeploymentSpec(n=11, f=4, strong=False)
        assert spec.m_max == 5
