"""Bitwise parity: the vectorised collect path against the per-worker loop.

The vectorised path's contract is *bit identity*: every elementwise array
operation replaces a per-worker scalar operation with the same floats, every
RNG draw happens in the same stream in the same order, and the stable
argsort over arrival times reproduces the event heap's ``(time, order)`` pop
order exactly.  Each scenario below trains the same deployment twice —
``vectorized=True`` and ``vectorized=False`` — and requires byte-identical
final parameters *and* a byte-identical telemetry export.

These scenarios deliberately sweep every hot-path branch: all four codecs
(with and without error feedback), stragglers, link contention, a WAN
topology, delta broadcasts, lossy links and compact telemetry.
"""

import numpy as np
import pytest

from repro.cluster.builder import build_trainer
from repro.cluster.cost_model import StragglerModel
from repro.cluster.trainer import TrainerConfig
from repro.data.datasets import gaussian_blobs

SCENARIOS = {
    "identity": {},
    "topk_ef": {"codec": "top-k", "codec_k": 8},
    "randomk": {"codec": "random-k", "codec_k": 8, "error_feedback": False},
    "qsgd_ef": {"codec": "qsgd", "quantize_bits": 4},
    "straggler": {"straggler_model": StragglerModel("pareto")},
    "contended": {"link_sharing": "fair"},
    "wan": {"link_profile": "wan:2x10mbit/5ms", "link_sharing": "fair"},
    "broadcast_delta": {"broadcast_codec": "top-k", "broadcast_k": 8},
    "lossy": {"lossy_links": 3, "lossy_drop_rate": 0.3},
    "compact_telemetry": {"compact_telemetry": True},
}


def _run(vectorized: bool, overrides: dict):
    kwargs = dict(
        model="logistic",
        model_kwargs={"input_dim": 10, "num_classes": 5},
        dataset=gaussian_blobs(num_train=2000, num_classes=5, dim=10, rng=3),
        gar="median",
        num_workers=8,
        num_byzantine=2,
        attack="sign-flip",
        batch_size=16,
        learning_rate=0.05,
        seed=11,
        vectorized=vectorized,
    )
    kwargs.update(overrides)
    trainer = build_trainer(**kwargs)
    history = trainer.run(TrainerConfig(max_steps=6, eval_every=0))
    return trainer, history


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_vectorized_path_is_bit_identical_to_the_loop(name):
    overrides = SCENARIOS[name]
    vec_trainer, vec_history = _run(True, overrides)
    loop_trainer, loop_history = _run(False, overrides)
    np.testing.assert_array_equal(
        vec_trainer.server.parameters, loop_trainer.server.parameters
    )
    assert vec_trainer.clock.now == loop_trainer.clock.now
    assert vec_history.to_dict() == loop_history.to_dict()
    # Event accounting agrees even though the vectorised path never builds
    # the per-step heap.
    assert vec_trainer.events_dispatched == loop_trainer.events_dispatched
    assert vec_trainer.peak_queue_size == loop_trainer.peak_queue_size


def test_vectorized_parity_with_selection_gar():
    # Multi-Krum surfaces selected_workers / selection_scores through the
    # aggregation fast path — the diagnostics must match the loop's.
    overrides = {"gar": "multi-krum", "codec": "top-k", "codec_k": 8}
    vec_trainer, vec_history = _run(True, overrides)
    loop_trainer, loop_history = _run(False, overrides)
    np.testing.assert_array_equal(
        vec_trainer.server.parameters, loop_trainer.server.parameters
    )
    vec_steps = vec_history.steps
    loop_steps = loop_history.steps
    assert [s.selected_workers for s in vec_steps] == [
        s.selected_workers for s in loop_steps
    ]
    assert [s.selection_scores for s in vec_steps] == [
        s.selection_scores for s in loop_steps
    ]
