"""Tests for flatten/unflatten utilities."""

import numpy as np
import pytest

from repro.utils.flatten import flatten_arrays, total_size, unflatten_array


def test_roundtrip_preserves_values(rng):
    arrays = [rng.standard_normal((3, 4)), rng.standard_normal(5), rng.standard_normal((2, 2, 2))]
    flat, shapes = flatten_arrays(arrays)
    assert flat.shape == (3 * 4 + 5 + 8,)
    restored = unflatten_array(flat, shapes)
    for original, back in zip(arrays, restored):
        np.testing.assert_allclose(original, back)


def test_flatten_empty_list():
    flat, shapes = flatten_arrays([])
    assert flat.size == 0
    assert shapes == []


def test_unflatten_wrong_size_raises():
    with pytest.raises(ValueError):
        unflatten_array(np.zeros(5), [(2, 2)])


def test_unflatten_preserves_shapes():
    restored = unflatten_array(np.arange(6, dtype=float), [(2, 3)])
    assert restored[0].shape == (2, 3)
    np.testing.assert_array_equal(restored[0], np.arange(6).reshape(2, 3))


def test_total_size():
    assert total_size([(2, 3), (4,), ()]) == 6 + 4 + 1


def test_flatten_casts_to_float64():
    flat, _ = flatten_arrays([np.array([1, 2, 3], dtype=np.int32)])
    assert flat.dtype == np.float64


def test_scalar_shape_roundtrip():
    flat, shapes = flatten_arrays([np.array(3.5)])
    assert flat.shape == (1,)
    restored = unflatten_array(flat, shapes)
    assert restored[0].shape == ()
    assert float(restored[0]) == 3.5
