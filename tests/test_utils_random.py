"""Tests for the deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.random import as_rng, derive_seed, spawn_rngs


def test_as_rng_from_int_is_deterministic():
    a = as_rng(7).standard_normal(5)
    b = as_rng(7).standard_normal(5)
    np.testing.assert_array_equal(a, b)


def test_as_rng_passes_through_generator():
    generator = np.random.default_rng(0)
    assert as_rng(generator) is generator


def test_as_rng_none_gives_generator():
    assert isinstance(as_rng(None), np.random.Generator)


def test_spawn_rngs_count():
    rngs = spawn_rngs(3, 5)
    assert len(rngs) == 5
    assert all(isinstance(r, np.random.Generator) for r in rngs)


def test_spawn_rngs_streams_are_independent():
    rngs = spawn_rngs(3, 2)
    a = rngs[0].standard_normal(100)
    b = rngs[1].standard_normal(100)
    assert not np.allclose(a, b)


def test_spawn_rngs_deterministic_from_seed():
    first = [r.standard_normal(4) for r in spawn_rngs(11, 3)]
    second = [r.standard_normal(4) for r in spawn_rngs(11, 3)]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)


def test_spawn_rngs_negative_count_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_count():
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_from_generator():
    rngs = spawn_rngs(np.random.default_rng(5), 3)
    assert len(rngs) == 3


def test_derive_seed_is_stable():
    assert derive_seed(42, "worker", 3) == derive_seed(42, "worker", 3)


def test_derive_seed_differs_across_tags():
    assert derive_seed(42, "worker", 3) != derive_seed(42, "worker", 4)
    assert derive_seed(42, "worker") != derive_seed(42, "channel")
