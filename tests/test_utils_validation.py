"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ConfigurationError
from repro.utils.validation import (
    check_gradient_matrix,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_same_shape,
    stack_gradients,
)


class TestCheckPositiveInt:
    def test_accepts_valid(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(3.5, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ConfigurationError):
            check_positive_int(-1, "x", minimum=0)


class TestCheckNonNegativeInt:
    def test_zero_ok(self):
        assert check_non_negative_int(0, "f") == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-1, "f")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")

    def test_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_probability("half", "p")


class TestStackGradients:
    def test_list_of_vectors(self):
        matrix = stack_gradients([np.ones(4), np.zeros(4)])
        assert matrix.shape == (2, 4)
        assert matrix.dtype == np.float64

    def test_matrix_passthrough(self):
        matrix = stack_gradients(np.arange(12, dtype=float).reshape(3, 4))
        assert matrix.shape == (3, 4)

    def test_empty_list_raises(self):
        with pytest.raises(AggregationError):
            stack_gradients([])

    def test_mismatched_dims_raise(self):
        with pytest.raises(AggregationError):
            stack_gradients([np.ones(4), np.ones(5)])

    def test_zero_dim_raises(self):
        with pytest.raises(AggregationError):
            stack_gradients([np.zeros(0)])

    def test_3d_array_rejected(self):
        with pytest.raises(AggregationError):
            stack_gradients(np.zeros((2, 3, 4)))

    def test_flattens_multi_dimensional_vectors(self):
        matrix = stack_gradients([np.ones((2, 3)), np.zeros((2, 3))])
        assert matrix.shape == (2, 6)


class TestCheckGradientMatrix:
    def test_minimum_rows_enforced(self):
        with pytest.raises(AggregationError):
            check_gradient_matrix(np.ones((2, 3)), minimum_rows=3)

    def test_passes_when_enough(self):
        out = check_gradient_matrix(np.ones((3, 3)), minimum_rows=3)
        assert out.shape == (3, 3)


def test_check_same_shape():
    check_same_shape(np.ones(3), np.zeros(3))
    with pytest.raises(ConfigurationError):
        check_same_shape(np.ones(3), np.zeros(4))
