"""Tests for the pluggable wire codecs (cluster/codec.py)."""

import numpy as np
import pytest

from repro.cluster.codec import (
    IdentityCodec,
    QSGDCodec,
    RandomKCodec,
    TopKCodec,
    available_codecs,
    decode_frame,
    make_codec,
)
from repro.cluster.cost_model import BYTES_PER_COORDINATE
from repro.exceptions import ConfigurationError


class TestIdentityCodec:
    def test_roundtrip_is_exact(self, rng):
        gradient = rng.standard_normal(513)
        codec = IdentityCodec()
        frame = codec.encode(gradient)
        np.testing.assert_array_equal(codec.decode(frame), gradient)
        np.testing.assert_array_equal(decode_frame(frame), gradient)

    def test_frame_bytes_match_raw_framing(self):
        codec = IdentityCodec()
        assert codec.frame_bytes(1000) == 1000 * BYTES_PER_COORDINATE
        assert codec.compression_ratio(1000) == 1.0

    def test_decode_returns_a_copy(self, rng):
        gradient = rng.standard_normal(16)
        codec = IdentityCodec()
        frame = codec.encode(gradient)
        decoded = codec.decode(frame)
        decoded[0] = 123.0
        assert frame.values[0] != 123.0 or gradient[0] != 123.0

    def test_empty_gradient_rejected(self):
        with pytest.raises(ConfigurationError):
            IdentityCodec().encode(np.zeros(0))


class TestTopKCodec:
    def test_support_is_the_k_largest_magnitudes(self, rng):
        gradient = rng.standard_normal(200)
        codec = TopKCodec(k=10)
        frame = codec.encode(gradient)
        kept = set(frame.indices.tolist())
        top = set(np.argsort(np.abs(gradient))[-10:].tolist())
        assert kept == top

    def test_decode_preserves_kept_magnitudes_and_zeroes_the_rest(self, rng):
        gradient = rng.standard_normal(100)
        codec = TopKCodec(k=7)
        decoded = codec.decode(codec.encode(gradient))
        kept = np.nonzero(decoded)[0]
        assert len(kept) == 7
        np.testing.assert_array_equal(decoded[kept], gradient[kept])
        # Every surviving coordinate dominates every zeroed one in magnitude.
        zeroed = np.setdiff1d(np.arange(100), kept)
        assert np.abs(gradient[kept]).min() >= np.abs(gradient[zeroed]).max()

    def test_k_larger_than_dim_degrades_to_identity(self, rng):
        gradient = rng.standard_normal(5)
        codec = TopKCodec(k=50)
        np.testing.assert_array_equal(codec.decode(codec.encode(gradient)), gradient)

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            TopKCodec(k=0)


class TestRandomKCodec:
    def test_unbiased_over_many_draws(self, rng):
        gradient = rng.standard_normal(50)
        codec = RandomKCodec(k=25, rng=0)
        mean = np.mean(
            [codec.decode(codec.encode(gradient)) for _ in range(4000)], axis=0
        )
        # Per-coordinate estimator std is |g_i| at k = d/2; 4000 draws put
        # the mean's std at |g_i|/63 — 0.25 is a comfortable many-sigma band.
        np.testing.assert_allclose(mean, gradient, atol=0.25)

    def test_support_size_and_scaling(self, rng):
        gradient = rng.standard_normal(40)
        codec = RandomKCodec(k=8, rng=1)
        frame = codec.encode(gradient)
        assert frame.indices.size == 8
        np.testing.assert_allclose(frame.values, gradient[frame.indices] * (40 / 8))


class TestQSGDCodec:
    def test_unbiased_over_many_draws(self, rng):
        gradient = rng.standard_normal(30)
        codec = QSGDCodec(bits=2, rng=0)
        mean = np.mean(
            [codec.decode(codec.encode(gradient)) for _ in range(4000)], axis=0
        )
        np.testing.assert_allclose(mean, gradient, atol=0.1)

    def test_levels_are_bounded_integers(self, rng):
        gradient = rng.standard_normal(500)
        codec = QSGDCodec(bits=3, rng=1)
        frame = codec.encode(gradient)
        levels = np.abs(frame.values)
        np.testing.assert_array_equal(levels, np.round(levels))
        assert levels.max() <= codec.levels

    def test_zero_gradient_roundtrips_to_zero(self):
        codec = QSGDCodec(bits=4, rng=0)
        decoded = codec.decode(codec.encode(np.zeros(10)))
        np.testing.assert_array_equal(decoded, np.zeros(10))

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QSGDCodec(bits=0)
        with pytest.raises(ConfigurationError):
            QSGDCodec(bits=17)


class TestByteMonotonicity:
    """Encoded bytes <= raw bytes, and decreasing in k / bits."""

    DIM = 10_000

    def test_every_codec_is_at_most_raw(self):
        raw = self.DIM * BYTES_PER_COORDINATE
        assert TopKCodec(k=self.DIM // 4).frame_bytes(self.DIM) <= raw
        assert RandomKCodec(k=self.DIM // 4, rng=0).frame_bytes(self.DIM) <= raw
        assert QSGDCodec(bits=8, rng=0).frame_bytes(self.DIM) <= raw
        assert IdentityCodec().frame_bytes(self.DIM) == raw

    def test_bytes_decrease_in_k(self):
        sizes = [TopKCodec(k=k).frame_bytes(self.DIM) for k in (4000, 1000, 100, 10)]
        assert sizes == sorted(sizes, reverse=True)
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_bytes_decrease_in_bits(self):
        sizes = [QSGDCodec(bits=b, rng=0).frame_bytes(self.DIM) for b in (16, 8, 4, 2, 1)]
        assert sizes == sorted(sizes, reverse=True)
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_frame_carries_its_priced_bytes(self, rng):
        gradient = rng.standard_normal(self.DIM)
        for codec in (IdentityCodec(), TopKCodec(k=100), QSGDCodec(bits=4, rng=0)):
            frame = codec.encode(gradient)
            assert frame.nbytes == codec.frame_bytes(self.DIM)


class TestRegistry:
    def test_available_codecs(self):
        assert available_codecs() == ["identity", "qsgd", "random-k", "top-k"]

    def test_make_codec_identity(self):
        assert isinstance(make_codec("identity"), IdentityCodec)

    def test_make_codec_topk_requires_k(self):
        with pytest.raises(ConfigurationError, match="codec_k"):
            make_codec("top-k")
        assert make_codec("top-k", k=5).k == 5

    def test_make_codec_rejects_misplaced_arguments(self):
        with pytest.raises(ConfigurationError):
            make_codec("identity", k=5)
        with pytest.raises(ConfigurationError):
            make_codec("identity", bits=4)
        with pytest.raises(ConfigurationError):
            make_codec("qsgd", k=5)
        with pytest.raises(ConfigurationError):
            make_codec("top-k", k=5, bits=4)

    def test_make_codec_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            make_codec("zip")

    def test_qsgd_default_bits(self):
        assert make_codec("qsgd").bits == 4


class TestDegradedFrames:
    """decode_frame handles frames the lossy transport mangled."""

    def test_sparse_frame_with_nan_values(self, rng):
        gradient = rng.standard_normal(100)
        codec = TopKCodec(k=10)
        frame = codec.encode(gradient)
        mangled = frame.degraded(np.full(10, np.nan))
        decoded = decode_frame(mangled)
        assert np.isnan(decoded[frame.indices]).all()
        others = np.setdiff1d(np.arange(100), frame.indices)
        np.testing.assert_array_equal(decoded[others], 0.0)

    def test_dropped_frame_propagates_none(self, rng):
        frame = TopKCodec(k=4).encode(rng.standard_normal(16))
        assert frame.degraded(None) is None
