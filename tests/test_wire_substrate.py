"""Integration tests for the wire substrate: codecs + link contention + RNG isolation."""

import numpy as np
import pytest

from repro.cluster import CostModel, LossyChannel, RecoveryPolicy, build_trainer
from repro.cluster.trainer import TrainerConfig
from repro.exceptions import ConfigurationError


def _build(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(
        model="mlp",
        model_kwargs=tiny_model_kwargs,
        dataset=tiny_dataset,
        gar="average",
        num_workers=4,
        batch_size=16,
        learning_rate=5e-3,
        seed=123,
    )
    kwargs.update(overrides)
    return build_trainer(**kwargs)


class TestWireRngIsolation:
    """Satellite regression: wire randomness cannot perturb training streams."""

    def test_drop_rate_does_not_perturb_model_init_or_batch_order(
        self, tiny_dataset, tiny_model_kwargs
    ):
        clean = _build(tiny_dataset, tiny_model_kwargs,
                       lossy_links=2, lossy_drop_rate=0.0)
        lossy = _build(tiny_dataset, tiny_model_kwargs,
                       lossy_links=2, lossy_drop_rate=0.7)
        # Model initialisation is bit-identical regardless of the drop rate.
        np.testing.assert_array_equal(clean.server.parameters, lossy.server.parameters)
        # Every worker's first mini-batch is bit-identical too.
        for a, b in zip(clean.honest_workers, lossy.honest_workers):
            ax, ay = a.sampler.sample()
            bx, by = b.sampler.sample()
            np.testing.assert_array_equal(ax, bx)
            np.testing.assert_array_equal(ay, by)

    def test_first_step_losses_identical_under_different_drop_rates(
        self, tiny_dataset, tiny_model_kwargs
    ):
        # The first step's honest gradients are computed before any wire
        # damage can feed back into the model, so the mean loss must match.
        histories = []
        for drop in (0.0, 0.5):
            trainer = _build(tiny_dataset, tiny_model_kwargs,
                             lossy_links=1, lossy_drop_rate=drop,
                             lossy_policy=RecoveryPolicy.NAN_FILL,
                             gar="selective-average")
            histories.append(trainer.run(TrainerConfig(max_steps=1, eval_every=0)))
        assert histories[0].steps[0].mean_loss == histories[1].steps[0].mean_loss

    def test_codec_choice_does_not_perturb_model_init(
        self, tiny_dataset, tiny_model_kwargs
    ):
        identity = _build(tiny_dataset, tiny_model_kwargs)
        qsgd = _build(tiny_dataset, tiny_model_kwargs, codec="qsgd", quantize_bits=6)
        np.testing.assert_array_equal(identity.server.parameters, qsgd.server.parameters)

    def test_loss_free_lossy_channel_consumes_no_wire_randomness(self, rng):
        channel = LossyChannel(drop_rate=0.0, policy="random-fill", rng=9)
        before_wire = channel._wire_rng.bit_generator.state
        before_fill = channel.packetizer._rng.bit_generator.state
        channel.transfer(rng.standard_normal(1000), CostModel())
        assert channel._wire_rng.bit_generator.state == before_wire
        assert channel.packetizer._rng.bit_generator.state == before_fill

    def test_drop_draws_do_not_perturb_fill_stream(self, rng):
        # Channels with the same seed but different drop rates consume
        # different *amounts* of drop randomness; because the garbage fill
        # lives on its own named stream, both channels' fill streams start
        # from the identical state — and the drop stream's consumption never
        # advances the fill stream.
        fresh_a = LossyChannel(drop_rate=0.2, rng=4)
        fresh_b = LossyChannel(drop_rate=0.9, rng=4)
        assert (
            fresh_a.packetizer._rng.bit_generator.state
            == fresh_b.packetizer._rng.bit_generator.state
        )
        payload = rng.standard_normal(2048)
        fill_before = fresh_a.packetizer._rng.bit_generator.state
        nan_fill = LossyChannel(drop_rate=0.5, policy="nan-fill", rng=4)
        nan_fill.transfer(payload, CostModel())
        # NaN fill never draws garbage: only the drop stream advanced.
        assert nan_fill.packetizer._rng.bit_generator.state == fill_before
        assert nan_fill._wire_rng.bit_generator.state != fresh_a._wire_rng.bit_generator.state


class TestIdentityNoneParity:
    """codec=identity + link_sharing=none is the seed wire, bit for bit."""

    def test_explicit_defaults_match_implicit_defaults(
        self, tiny_dataset, tiny_model_kwargs
    ):
        implicit = _build(tiny_dataset, tiny_model_kwargs)
        explicit = _build(tiny_dataset, tiny_model_kwargs,
                          codec="identity", link_sharing="none")
        h_implicit = implicit.run(TrainerConfig(max_steps=5, eval_every=0))
        h_explicit = explicit.run(TrainerConfig(max_steps=5, eval_every=0))
        np.testing.assert_array_equal(
            implicit.server.parameters, explicit.server.parameters
        )
        assert h_implicit.total_time == h_explicit.total_time

    def test_fair_sharing_changes_time_not_trajectory(
        self, tiny_dataset, tiny_model_kwargs
    ):
        base = _build(tiny_dataset, tiny_model_kwargs)
        contended = _build(tiny_dataset, tiny_model_kwargs, link_sharing="fair")
        h_base = base.run(TrainerConfig(max_steps=5, eval_every=0))
        h_contended = contended.run(TrainerConfig(max_steps=5, eval_every=0))
        # Full synchrony admits every gradient either way: same parameters.
        np.testing.assert_array_equal(base.server.parameters, contended.server.parameters)
        # But the shared link makes the broadcast + pushes contend: slower.
        assert h_contended.total_time > h_base.total_time

    def test_contention_records_per_worker_queueing_delay(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs, link_sharing="fair")
        history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        delays = [
            t.queueing_delay_seconds for t in history.worker_timelines.values()
        ]
        assert len(delays) == 4
        assert all(d > 0 for d in delays)
        assert history.wire_summary()["queueing_delay_seconds"] > 0

    def test_uncontended_run_records_zero_queueing_delay(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        assert history.wire_summary()["queueing_delay_seconds"] == 0.0
        assert history.wire_summary()["bytes_sent"] > 0


class TestCodecTraining:
    def test_topk_moves_fewer_bytes(self, tiny_dataset, tiny_model_kwargs):
        identity = _build(tiny_dataset, tiny_model_kwargs)
        sparse = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        h_identity = identity.run(TrainerConfig(max_steps=5, eval_every=0))
        h_sparse = sparse.run(TrainerConfig(max_steps=5, eval_every=0))
        assert h_sparse.total_wire_bytes < h_identity.total_wire_bytes / 4
        # Compressed frames are cheaper to move: simulated time shrinks too.
        assert h_sparse.total_time <= h_identity.total_time

    def test_qsgd_training_converges(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="qsgd",
                         quantize_bits=8)
        history = trainer.run(TrainerConfig(max_steps=30, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.5

    def test_compression_error_is_recorded(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        history = trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        assert history.wire_summary()["compression_error"] > 0

    def test_codec_composes_with_lossy_transport(self, tiny_dataset, tiny_model_kwargs):
        # Drops hit the *compressed* frames; the robust GAR absorbs them.
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         gar="median", declared_f=1,
                         codec="top-k", codec_k=20,
                         lossy_links=1, lossy_drop_rate=0.3)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        assert not history.diverged

    def test_wire_bytes_recorded_per_update(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        per_update = trainer.codec.frame_bytes(trainer.server.dim) * 4
        for record in trainer.history.steps:
            assert record.wire_bytes == pytest.approx(per_update)
        for entry in trainer.server.update_log:
            assert entry.wire_bytes == pytest.approx(per_update)


class TestAsyncWireSubstrate:
    def _build_async(self, tiny_dataset, tiny_model_kwargs, **overrides):
        return _build(
            tiny_dataset, tiny_model_kwargs,
            mode="async", sync_policy="quorum", gar="average",
            num_workers=4, max_version_lag=3,
            **overrides,
        )

    def test_async_fair_sharing_records_queueing_delay(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                    link_sharing="fair")
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        assert history.wire_summary()["queueing_delay_seconds"] > 0
        assert not history.diverged

    def test_async_contended_run_is_deterministic(
        self, tiny_dataset, tiny_model_kwargs
    ):
        params = []
        for _ in range(2):
            trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                        link_sharing="fair", codec="qsgd",
                                        quantize_bits=6)
            trainer.run(TrainerConfig(max_steps=5, eval_every=0))
            params.append(trainer.server.parameters)
        np.testing.assert_array_equal(params[0], params[1])

    def test_async_codec_counts_bytes(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                    codec="top-k", codec_k=15)
        history = trainer.run(TrainerConfig(max_steps=4, eval_every=0))
        frame_bytes = trainer.codec.frame_bytes(trainer.server.dim)
        sent = history.wire_summary()["bytes_sent"]
        assert sent > 0
        assert sent == pytest.approx(
            frame_bytes * sum(t.rounds_completed for t in history.worker_timelines.values())
        )


class TestErrorFeedback:
    def test_residuals_are_carried_per_worker(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        assert trainer.error_feedback
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        assert sorted(trainer._codec_memory) == [w.worker_id for w in trainer.honest_workers]
        assert all(np.linalg.norm(m) > 0 for m in trainer._codec_memory.values())

    def test_identity_codec_disables_error_feedback(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs)
        assert not trainer.error_feedback
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        assert trainer._codec_memory == {}

    def test_error_feedback_improves_aggressive_sparsification(
        self, tiny_dataset, tiny_model_kwargs
    ):
        histories = {}
        for ef in (True, False):
            trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k",
                             codec_k=5, error_feedback=ef)
            histories[ef] = trainer.run(TrainerConfig(max_steps=40, eval_every=10))
        assert histories[True].final_accuracy >= histories[False].final_accuracy

    def test_resume_with_topk_codec_is_bit_identical(
        self, tiny_dataset, tiny_model_kwargs, tmp_path
    ):
        from repro.cluster.checkpoint import (
            capture_training_state,
            load_training_state,
            restore_training_state,
            save_training_state,
        )

        build = lambda: _build(tiny_dataset, tiny_model_kwargs,
                               codec="top-k", codec_k=10)
        uninterrupted = build()
        uninterrupted.run(TrainerConfig(max_steps=6, eval_every=0))

        first = build()
        first.run(TrainerConfig(max_steps=3, eval_every=0))
        path = save_training_state(capture_training_state(first), tmp_path / "state.npz")

        resumed = build()
        restore_training_state(resumed, load_training_state(path))
        resumed.run(TrainerConfig(max_steps=3, eval_every=0))
        np.testing.assert_array_equal(
            resumed.server.parameters, uninterrupted.server.parameters
        )


class TestBuilderValidation:
    def test_codec_k_rejected_for_identity(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="codec_k"):
            _build(tiny_dataset, tiny_model_kwargs, codec="identity", codec_k=5)

    def test_quantize_bits_rejected_for_topk(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="quantize_bits"):
            _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=5,
                   quantize_bits=4)

    def test_unknown_link_sharing_rejected(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="link_sharing"):
            _build(tiny_dataset, tiny_model_kwargs, link_sharing="weighted")

    def test_codec_instance_with_kwargs_rejected(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster.codec import TopKCodec

        with pytest.raises(ConfigurationError):
            _build(tiny_dataset, tiny_model_kwargs, codec=TopKCodec(5), codec_k=5)
