"""Integration tests for the wire substrate: codecs + link contention + RNG isolation."""

import numpy as np
import pytest

from repro.cluster import CostModel, DelayedChannel, LossyChannel, RecoveryPolicy, build_trainer
from repro.cluster.codec import RandomKCodec, TopKCodec, decode_frame
from repro.cluster.trainer import TrainerConfig
from repro.exceptions import ConfigurationError


def _build(tiny_dataset, tiny_model_kwargs, **overrides):
    kwargs = dict(
        model="mlp",
        model_kwargs=tiny_model_kwargs,
        dataset=tiny_dataset,
        gar="average",
        num_workers=4,
        batch_size=16,
        learning_rate=5e-3,
        seed=123,
    )
    kwargs.update(overrides)
    return build_trainer(**kwargs)


class TestWireRngIsolation:
    """Satellite regression: wire randomness cannot perturb training streams."""

    def test_drop_rate_does_not_perturb_model_init_or_batch_order(
        self, tiny_dataset, tiny_model_kwargs
    ):
        clean = _build(tiny_dataset, tiny_model_kwargs,
                       lossy_links=2, lossy_drop_rate=0.0)
        lossy = _build(tiny_dataset, tiny_model_kwargs,
                       lossy_links=2, lossy_drop_rate=0.7)
        # Model initialisation is bit-identical regardless of the drop rate.
        np.testing.assert_array_equal(clean.server.parameters, lossy.server.parameters)
        # Every worker's first mini-batch is bit-identical too.
        for a, b in zip(clean.honest_workers, lossy.honest_workers):
            ax, ay = a.sampler.sample()
            bx, by = b.sampler.sample()
            np.testing.assert_array_equal(ax, bx)
            np.testing.assert_array_equal(ay, by)

    def test_first_step_losses_identical_under_different_drop_rates(
        self, tiny_dataset, tiny_model_kwargs
    ):
        # The first step's honest gradients are computed before any wire
        # damage can feed back into the model, so the mean loss must match.
        histories = []
        for drop in (0.0, 0.5):
            trainer = _build(tiny_dataset, tiny_model_kwargs,
                             lossy_links=1, lossy_drop_rate=drop,
                             lossy_policy=RecoveryPolicy.NAN_FILL,
                             gar="selective-average")
            histories.append(trainer.run(TrainerConfig(max_steps=1, eval_every=0)))
        assert histories[0].steps[0].mean_loss == histories[1].steps[0].mean_loss

    def test_codec_choice_does_not_perturb_model_init(
        self, tiny_dataset, tiny_model_kwargs
    ):
        identity = _build(tiny_dataset, tiny_model_kwargs)
        qsgd = _build(tiny_dataset, tiny_model_kwargs, codec="qsgd", quantize_bits=6)
        np.testing.assert_array_equal(identity.server.parameters, qsgd.server.parameters)

    def test_loss_free_lossy_channel_consumes_no_wire_randomness(self, rng):
        channel = LossyChannel(drop_rate=0.0, policy="random-fill", rng=9)
        before_wire = channel._wire_rng.bit_generator.state
        before_fill = channel.packetizer._rng.bit_generator.state
        channel.transfer(rng.standard_normal(1000), CostModel())
        assert channel._wire_rng.bit_generator.state == before_wire
        assert channel.packetizer._rng.bit_generator.state == before_fill

    def test_drop_draws_do_not_perturb_fill_stream(self, rng):
        # Channels with the same seed but different drop rates consume
        # different *amounts* of drop randomness; because the garbage fill
        # lives on its own named stream, both channels' fill streams start
        # from the identical state — and the drop stream's consumption never
        # advances the fill stream.
        fresh_a = LossyChannel(drop_rate=0.2, rng=4)
        fresh_b = LossyChannel(drop_rate=0.9, rng=4)
        assert (
            fresh_a.packetizer._rng.bit_generator.state
            == fresh_b.packetizer._rng.bit_generator.state
        )
        payload = rng.standard_normal(2048)
        fill_before = fresh_a.packetizer._rng.bit_generator.state
        nan_fill = LossyChannel(drop_rate=0.5, policy="nan-fill", rng=4)
        nan_fill.transfer(payload, CostModel())
        # NaN fill never draws garbage: only the drop stream advanced.
        assert nan_fill.packetizer._rng.bit_generator.state == fill_before
        assert nan_fill._wire_rng.bit_generator.state != fresh_a._wire_rng.bit_generator.state


class TestIdentityNoneParity:
    """codec=identity + link_sharing=none is the seed wire, bit for bit."""

    def test_explicit_defaults_match_implicit_defaults(
        self, tiny_dataset, tiny_model_kwargs
    ):
        implicit = _build(tiny_dataset, tiny_model_kwargs)
        explicit = _build(tiny_dataset, tiny_model_kwargs,
                          codec="identity", link_sharing="none")
        h_implicit = implicit.run(TrainerConfig(max_steps=5, eval_every=0))
        h_explicit = explicit.run(TrainerConfig(max_steps=5, eval_every=0))
        np.testing.assert_array_equal(
            implicit.server.parameters, explicit.server.parameters
        )
        assert h_implicit.total_time == h_explicit.total_time

    def test_fair_sharing_changes_time_not_trajectory(
        self, tiny_dataset, tiny_model_kwargs
    ):
        base = _build(tiny_dataset, tiny_model_kwargs)
        contended = _build(tiny_dataset, tiny_model_kwargs, link_sharing="fair")
        h_base = base.run(TrainerConfig(max_steps=5, eval_every=0))
        h_contended = contended.run(TrainerConfig(max_steps=5, eval_every=0))
        # Full synchrony admits every gradient either way: same parameters.
        np.testing.assert_array_equal(base.server.parameters, contended.server.parameters)
        # But the shared link makes the broadcast + pushes contend: slower.
        assert h_contended.total_time > h_base.total_time

    def test_contention_records_per_worker_queueing_delay(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs, link_sharing="fair")
        history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        delays = [
            t.queueing_delay_seconds for t in history.worker_timelines.values()
        ]
        assert len(delays) == 4
        assert all(d > 0 for d in delays)
        assert history.wire_summary()["queueing_delay_seconds"] > 0

    def test_uncontended_run_records_zero_queueing_delay(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
        assert history.wire_summary()["queueing_delay_seconds"] == 0.0
        assert history.wire_summary()["bytes_sent"] > 0


class TestCodecTraining:
    def test_topk_moves_fewer_bytes(self, tiny_dataset, tiny_model_kwargs):
        identity = _build(tiny_dataset, tiny_model_kwargs)
        sparse = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        h_identity = identity.run(TrainerConfig(max_steps=5, eval_every=0))
        h_sparse = sparse.run(TrainerConfig(max_steps=5, eval_every=0))
        assert h_sparse.total_wire_bytes < h_identity.total_wire_bytes / 4
        # Compressed frames are cheaper to move: simulated time shrinks too.
        assert h_sparse.total_time <= h_identity.total_time

    def test_qsgd_training_converges(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="qsgd",
                         quantize_bits=8)
        history = trainer.run(TrainerConfig(max_steps=30, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.5

    def test_compression_error_is_recorded(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        history = trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        assert history.wire_summary()["compression_error"] > 0

    def test_codec_composes_with_lossy_transport(self, tiny_dataset, tiny_model_kwargs):
        # Drops hit the *compressed* frames; the robust GAR absorbs them.
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         gar="median", declared_f=1,
                         codec="top-k", codec_k=20,
                         lossy_links=1, lossy_drop_rate=0.3)
        history = trainer.run(TrainerConfig(max_steps=10, eval_every=0))
        assert not history.diverged

    def test_wire_bytes_recorded_per_update(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        per_update = trainer.codec.frame_bytes(trainer.server.dim) * 4
        for record in trainer.history.steps:
            assert record.wire_bytes == pytest.approx(per_update)
        for entry in trainer.server.update_log:
            assert entry.wire_bytes == pytest.approx(per_update)


class TestAsyncWireSubstrate:
    def _build_async(self, tiny_dataset, tiny_model_kwargs, **overrides):
        return _build(
            tiny_dataset, tiny_model_kwargs,
            mode="async", sync_policy="quorum", gar="average",
            num_workers=4, max_version_lag=3,
            **overrides,
        )

    def test_async_fair_sharing_records_queueing_delay(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                    link_sharing="fair")
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        assert history.wire_summary()["queueing_delay_seconds"] > 0
        assert not history.diverged

    def test_async_contended_run_is_deterministic(
        self, tiny_dataset, tiny_model_kwargs
    ):
        params = []
        for _ in range(2):
            trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                        link_sharing="fair", codec="qsgd",
                                        quantize_bits=6)
            trainer.run(TrainerConfig(max_steps=5, eval_every=0))
            params.append(trainer.server.parameters)
        np.testing.assert_array_equal(params[0], params[1])

    def test_async_codec_counts_bytes(self, tiny_dataset, tiny_model_kwargs):
        trainer = self._build_async(tiny_dataset, tiny_model_kwargs,
                                    codec="top-k", codec_k=15)
        history = trainer.run(TrainerConfig(max_steps=4, eval_every=0))
        frame_bytes = trainer.codec.frame_bytes(trainer.server.dim)
        sent = history.wire_summary()["bytes_sent"]
        assert sent > 0
        assert sent == pytest.approx(
            frame_bytes * sum(t.rounds_completed for t in history.worker_timelines.values())
        )


class TestErrorFeedback:
    def test_residuals_are_carried_per_worker(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=10)
        assert trainer.error_feedback
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        assert sorted(trainer._codec_memory) == [w.worker_id for w in trainer.honest_workers]
        assert all(np.linalg.norm(m) > 0 for m in trainer._codec_memory.values())

    def test_identity_codec_disables_error_feedback(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs)
        assert not trainer.error_feedback
        trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        assert trainer._codec_memory == {}

    def test_error_feedback_improves_aggressive_sparsification(
        self, tiny_dataset, tiny_model_kwargs
    ):
        histories = {}
        for ef in (True, False):
            trainer = _build(tiny_dataset, tiny_model_kwargs, codec="top-k",
                             codec_k=5, error_feedback=ef)
            histories[ef] = trainer.run(TrainerConfig(max_steps=40, eval_every=10))
        assert histories[True].final_accuracy >= histories[False].final_accuracy

    def test_resume_with_topk_codec_is_bit_identical(
        self, tiny_dataset, tiny_model_kwargs, tmp_path
    ):
        from repro.cluster.checkpoint import (
            capture_training_state,
            load_training_state,
            restore_training_state,
            save_training_state,
        )

        build = lambda: _build(tiny_dataset, tiny_model_kwargs,
                               codec="top-k", codec_k=10)
        uninterrupted = build()
        uninterrupted.run(TrainerConfig(max_steps=6, eval_every=0))

        first = build()
        first.run(TrainerConfig(max_steps=3, eval_every=0))
        path = save_training_state(capture_training_state(first), tmp_path / "state.npz")

        resumed = build()
        restore_training_state(resumed, load_training_state(path))
        resumed.run(TrainerConfig(max_steps=3, eval_every=0))
        np.testing.assert_array_equal(
            resumed.server.parameters, uninterrupted.server.parameters
        )


class TestJitterRngIsolation:
    """Satellite regression: jitter randomness cannot perturb training streams."""

    def test_jitter_does_not_perturb_model_init_or_batch_order(
        self, tiny_dataset, tiny_model_kwargs
    ):
        plain = _build(tiny_dataset, tiny_model_kwargs)
        jittered = _build(tiny_dataset, tiny_model_kwargs,
                          link_jitters={2: 0.5, 3: 0.25})
        np.testing.assert_array_equal(plain.server.parameters, jittered.server.parameters)
        for a, b in zip(plain.honest_workers, jittered.honest_workers):
            ax, ay = a.sampler.sample()
            bx, by = b.sampler.sample()
            np.testing.assert_array_equal(ax, bx)
            np.testing.assert_array_equal(ay, by)

    def test_builder_jitter_is_reproducible_from_the_seed(
        self, tiny_dataset, tiny_model_kwargs
    ):
        times = []
        for _ in range(2):
            trainer = _build(tiny_dataset, tiny_model_kwargs,
                             link_jitters={1: 0.3, 2: 0.3})
            history = trainer.run(TrainerConfig(max_steps=3, eval_every=0))
            times.append(history.total_time)
        assert times[0] == times[1]

    def test_delayed_channel_spawns_a_named_child_stream(self, rng):
        # Two channels seeded alike draw identical jitter; and the child
        # spawn means the raw parent stream is never consumed directly.
        a = DelayedChannel(delay_s=0.0, jitter_s=1.0, rng=7)
        b = DelayedChannel(delay_s=0.0, jitter_s=1.0, rng=7)
        payload = rng.standard_normal(64)
        cost = CostModel()
        for _ in range(3):
            _, sa = a.transfer(payload, cost)
            _, sb = b.transfer(payload, cost)
            assert sa == sb

    def test_jitter_draws_do_not_perturb_inner_lossy_streams(self, rng):
        # A delayed wrapper sharing its seed material with the wrapped lossy
        # channel must leave the lossy channel's wire/fill streams exactly
        # where an unwrapped channel's would be.
        parent_a = np.random.default_rng(11)
        inner_a = LossyChannel(drop_rate=0.4, rng=parent_a)
        wrapped = DelayedChannel(inner_a, jitter_s=0.5, rng=parent_a)
        payload = rng.standard_normal(2048)
        cost = CostModel()
        for _ in range(2):
            wrapped.transfer(payload, cost)

        parent_b = np.random.default_rng(11)
        inner_b = LossyChannel(drop_rate=0.4, rng=parent_b)
        np.random.default_rng(0)  # unrelated draw, must not matter
        for _ in range(2):
            inner_b.transfer(payload, cost)
        # Same number of transfers -> identical wire-stream states, jitter or not.
        assert (
            inner_a._wire_rng.bit_generator.state
            == inner_b._wire_rng.bit_generator.state
        )


class TestSparseFrameLoss:
    """Satellite regression: loss thins (index, value) pairs, never corrupts them."""

    def _drop_all_channel(self, policy):
        return LossyChannel(drop_rate=1.0, policy=policy,
                            coordinates_per_packet=4, rng=3)

    def test_lost_pairs_disappear_instead_of_garbling(self, rng):
        codec = TopKCodec(16)
        frame = codec.encode(rng.standard_normal(256))
        channel = LossyChannel(drop_rate=0.5, policy="random-fill",
                               coordinates_per_packet=4, rng=5)
        delivered, _ = channel.transfer_frame(frame, CostModel())
        assert delivered is not None
        # Survivors are a strict subset of the original pairs, value-exact.
        assert delivered.indices.size < frame.indices.size
        original = {int(i): v for i, v in zip(frame.indices, frame.values)}
        for index, value in zip(delivered.indices, delivered.values):
            assert original[int(index)] == value
        # Decode: surviving pairs scatter, lost coordinates are absent (zero),
        # and nothing lands outside the original support.
        decoded = decode_frame(delivered)
        outside = np.setdiff1d(np.arange(256), frame.indices)
        np.testing.assert_array_equal(decoded[outside], 0.0)

    def test_drop_gradient_policy_drops_sparse_frame_whole(self, rng):
        frame = TopKCodec(16).encode(rng.standard_normal(256))
        delivered, _ = self._drop_all_channel("drop-gradient").transfer_frame(
            frame, CostModel()
        )
        assert delivered is None

    def test_nan_fill_marks_lost_shared_support_coordinates(self, rng):
        # random-k elides indices (shared seed), so the receiver knows the
        # full support and which positions died: exactly those coordinates
        # are NaN — selective-average sees missing coordinates, not garbage.
        codec = RandomKCodec(16, rng=9)
        frame = codec.encode(rng.standard_normal(256))
        channel = LossyChannel(drop_rate=0.5, policy="nan-fill",
                               coordinates_per_packet=4, rng=5)
        delivered, _ = channel.transfer_frame(frame, CostModel())
        assert delivered is not None
        assert delivered.indices.size == frame.indices.size  # support retained
        decoded = decode_frame(delivered)
        lost = np.isnan(delivered.values)
        assert 0 < lost.sum() < frame.values.size
        assert np.isnan(decoded[frame.indices[lost]]).all()
        surviving = frame.indices[~lost]
        np.testing.assert_array_equal(decoded[surviving], frame.values[~lost])

    def test_loss_free_sparse_transfer_is_unchanged(self, rng):
        frame = TopKCodec(8).encode(rng.standard_normal(64))
        channel = LossyChannel(drop_rate=0.0, rng=1)
        delivered, _ = channel.transfer_frame(frame, CostModel())
        np.testing.assert_array_equal(delivered.values, frame.values)
        np.testing.assert_array_equal(delivered.indices, frame.indices)

    def test_selective_average_with_lossy_topk_converges(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         gar="selective-average",
                         codec="top-k", codec_k=20,
                         lossy_links=2, lossy_drop_rate=0.3,
                         lossy_policy=RecoveryPolicy.NAN_FILL)
        history = trainer.run(TrainerConfig(max_steps=20, eval_every=10))
        assert not history.diverged
        assert history.final_accuracy > 0.5


class TestByzantineBroadcastContention:
    """Satellite regression: Byzantine fetches contend on the shared egress."""

    def _build_byz(self, tiny_dataset, tiny_model_kwargs, **overrides):
        return _build(tiny_dataset, tiny_model_kwargs,
                      gar="median", declared_f=1, num_byzantine=1,
                      attack="reversed-gradient", **overrides)

    def test_byzantine_fetches_are_broadcast_sessions(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._build_byz(tiny_dataset, tiny_model_kwargs,
                                  link_sharing="fair")
        history = trainer.run(TrainerConfig(max_steps=1, eval_every=0))
        n = len(trainer.workers)
        model_bytes = trainer.cost_model.gradient_bytes(trainer.server.dim)
        capacity = trainer.cost_model.bandwidth_gbps * 1e9 / 8.0

        # The adversary's fetch is real: bytes and queueing are recorded.
        byz_id = trainer.byzantine_workers[0].worker_id
        byz = history.worker_timelines[byz_id]
        assert byz.bytes_received == model_bytes
        assert byz.queueing_delay_seconds == pytest.approx(
            (n - 1) * model_bytes / capacity
        )

        # Honest fetches contend with ALL n sessions (the pre-fix broadcast
        # scheduled only the honest ones): fair sharing of n equal sessions
        # queues each for (n-1) solo drains on the downlink, plus the
        # honest-only uplink contention on the push.
        num_honest = len(trainer.honest_workers)
        frame_bytes = trainer.codec.frame_bytes(trainer.server.dim)
        expected = (
            (n - 1) * model_bytes / capacity
            + (num_honest - 1) * frame_bytes / capacity
        )
        for worker in trainer.honest_workers:
            timeline = history.worker_timelines[worker.worker_id]
            assert timeline.queueing_delay_seconds == pytest.approx(expected)

    def test_uncontended_byzantine_fetch_still_counts_bytes(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._build_byz(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=2, eval_every=0))
        byz_id = trainer.byzantine_workers[0].worker_id
        byz = history.worker_timelines[byz_id]
        model_bytes = trainer.cost_model.gradient_bytes(trainer.server.dim)
        assert byz.bytes_received == 2 * model_bytes
        assert byz.queueing_delay_seconds == 0.0


class TestBytesAccounting:
    """Satellite: dropped/carried submissions charge bytes; downlinks reconcile."""

    def _quorum_build(self, tiny_dataset, tiny_model_kwargs, stragglers):
        return _build(
            tiny_dataset, tiny_model_kwargs,
            num_workers=5, declared_f=2, codec="top-k", codec_k=10,
            sync_policy="quorum",
            sync_kwargs={"quorum": 3, "stragglers": stragglers},
        )

    def test_dropped_quorum_submissions_still_charge_uplink_bytes(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._quorum_build(tiny_dataset, tiny_model_kwargs, "drop")
        steps = 4
        history = trainer.run(TrainerConfig(max_steps=steps, eval_every=0))
        frame_bytes = trainer.codec.frame_bytes(trainer.server.dim)
        wire = history.wire_summary()
        # Every push is charged at send time, admitted or not.
        assert wire["bytes_sent"] == pytest.approx(5 * steps * frame_bytes)
        # Admitted (per-update) bytes count only the quorum...
        assert history.total_wire_bytes == pytest.approx(3 * steps * frame_bytes)
        # ...so the gap is exactly the dropped stragglers' bytes.
        dropped = sum(r.dropped_stragglers for r in history.steps)
        assert wire["bytes_sent"] - history.total_wire_bytes == pytest.approx(
            dropped * frame_bytes
        )

    def test_carried_submissions_charge_bytes_once_when_admitted(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = self._quorum_build(tiny_dataset, tiny_model_kwargs, "carry")
        steps = 4
        history = trainer.run(TrainerConfig(max_steps=steps, eval_every=0))
        frame_bytes = trainer.codec.frame_bytes(trainer.server.dim)
        wire = history.wire_summary()
        assert wire["bytes_sent"] == pytest.approx(5 * steps * frame_bytes)
        # Carried gradients keep their wire bytes and are charged exactly
        # once, in the update that admits them.
        assert history.total_wire_bytes == pytest.approx(3 * steps * frame_bytes)

    def test_sync_downlink_counters_reconcile(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         broadcast_codec="top-k", broadcast_k=10)
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        wire = history.wire_summary()
        assert wire["bytes_received"] == pytest.approx(
            wire["bytes_received_full"] + wire["bytes_received_delta"]
        )
        # Per-update downlink records sum to the per-worker timeline totals.
        assert history.total_downlink_bytes == pytest.approx(wire["bytes_received"])
        assert wire["downlink_bytes"] == history.total_downlink_bytes

    def test_async_downlink_counters_reconcile(self, tiny_dataset, tiny_model_kwargs):
        trainer = _build(tiny_dataset, tiny_model_kwargs,
                         mode="async", sync_policy="quorum", max_version_lag=3,
                         broadcast_codec="top-k", broadcast_k=10)
        history = trainer.run(TrainerConfig(max_steps=5, eval_every=0))
        wire = history.wire_summary()
        assert wire["bytes_received"] == pytest.approx(
            wire["bytes_received_full"] + wire["bytes_received_delta"]
        )
        # Fetches issued after the last completed update are still in
        # flight; the step records plus that residual cover every byte the
        # timelines saw.
        assert history.total_downlink_bytes + trainer._interval_downlink == (
            pytest.approx(wire["bytes_received"])
        )

    def test_downlink_bytes_to_accuracy_mirrors_uplink(
        self, tiny_dataset, tiny_model_kwargs
    ):
        trainer = _build(tiny_dataset, tiny_model_kwargs)
        history = trainer.run(TrainerConfig(max_steps=20, eval_every=1))
        threshold = 0.9 * history.final_accuracy
        up = history.bytes_to_accuracy(threshold)
        down = history.downlink_bytes_to_accuracy(threshold)
        assert up is not None and down is not None
        # Identity framing both ways on a 4-worker cluster: equal per step.
        assert down == pytest.approx(up)
        assert history.downlink_bytes_to_accuracy(2.0) is None


class TestBuilderValidation:
    def test_codec_k_rejected_for_identity(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="codec_k"):
            _build(tiny_dataset, tiny_model_kwargs, codec="identity", codec_k=5)

    def test_quantize_bits_rejected_for_topk(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="quantize_bits"):
            _build(tiny_dataset, tiny_model_kwargs, codec="top-k", codec_k=5,
                   quantize_bits=4)

    def test_unknown_link_sharing_rejected(self, tiny_dataset, tiny_model_kwargs):
        with pytest.raises(ConfigurationError, match="link_sharing"):
            _build(tiny_dataset, tiny_model_kwargs, link_sharing="weighted")

    def test_codec_instance_with_kwargs_rejected(self, tiny_dataset, tiny_model_kwargs):
        from repro.cluster.codec import TopKCodec

        with pytest.raises(ConfigurationError):
            _build(tiny_dataset, tiny_model_kwargs, codec=TopKCodec(5), codec_k=5)
